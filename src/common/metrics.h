// Process-wide metrics registry: the observability layer's core.
//
// Three metric kinds, all safe for concurrent use without external locking:
//
//   Counter    monotonically increasing int64 (relaxed atomic adds) — the
//              lock-free home for operation counts. New std::atomic state
//              outside this file is flagged by tools/indoorflow_lint.py.
//   Gauge      a double that goes up and down (track-table sizes, rates).
//   Histogram  log-scale value distribution with fixed bucket boundaries
//              (16 sub-buckets per power of two, so percentile extraction
//              carries at most ~6.25% relative bucketing error).
//
// MetricsRegistry::Default() is the process-wide instance; registration is
// get-or-create by name and guarded by the annotated Mutex wrapper.
// Re-registering a name as a *different* kind is a programming error and
// aborts (tests/metrics_test.cc pins this down with a death test).
// Returned references stay valid for the registry's lifetime, so hot paths
// resolve names once and then touch only lock-free state.
//
// ScopedTimer records an elapsed-microseconds span into a Histogram and,
// when the JSONL trace sink is enabled (StartTracing / INDOORFLOW_TRACE),
// also emits a Chrome chrome://tracing complete event, so per-query phase
// spans can be replayed visually. See docs/OBSERVABILITY.md.

#ifndef INDOORFLOW_COMMON_METRICS_H_
#define INDOORFLOW_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace indoorflow {

/// Monotonic wall clock for latency spans, in nanoseconds. The epoch is
/// arbitrary (steady_clock); only differences are meaningful.
inline int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A monotonically increasing operation count. Adds are relaxed atomic
/// fetch-adds: concurrent increments never lose updates, and reads see a
/// value that is exact once writers quiesce.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A value that can go up and down (sizes, rates). Set/value are relaxed
/// atomic; Add is a CAS loop (atomic<double> has no portable fetch_add).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale histogram with fixed bucket boundaries, for latencies and
/// throughputs whose interesting range spans orders of magnitude. Each
/// power-of-two octave is split into kSubBuckets linear sub-buckets
/// (the HdrHistogram idea), so Percentile() is exact to within one
/// sub-bucket: relative error <= 1/kSubBuckets, plus exact min/max.
/// Record/readers are all relaxed atomics — no locks on the hot path.
class Histogram {
 public:
  static constexpr int kSubBuckets = 16;
  /// Lowest octave covers [2^kMinExponent, 2^(kMinExponent+1)).
  static constexpr int kMinExponent = -10;
  static constexpr int kNumOctaves = 54;  // up to ~1.76e13
  static constexpr int kNumBuckets = kSubBuckets * kNumOctaves;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample. Non-finite and non-positive values are dropped
  /// (the log-scale grid cannot represent them, and a NaN would poison
  /// sum()). Positive values below the first bucket clamp into bucket 0;
  /// values above the last bucket clamp into the final one. Min/max/sum
  /// track the raw value.
  void Record(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value; 0 when empty.
  double min() const;
  double max() const;

  /// The q-th percentile (q in [0, 100]) by linear interpolation inside
  /// the target bucket, clamped to the exact [min, max] envelope; q = 0 and
  /// q = 100 return min() and max() exactly. Returns 0 when empty.
  /// Concurrent Record()s may skew an in-flight read by the samples that
  /// land mid-scan; quiesced reads are within bucket error.
  double Percentile(double q) const;

  /// Inclusive lower bound of bucket `index` (the fixed boundary grid).
  static double BucketLowerBound(int index);
  /// The bucket a value lands in (clamped to [0, kNumBuckets - 1]).
  static int BucketIndex(double value);

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +/-infinity sentinels make the min/max CAS loops race-free without a
  // first-sample special case; the accessors map "empty" to 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Named metric registry. Get-or-create by name; the process-wide instance
/// is Default(), but tests may hold private registries. Lookup locks the
/// annotated Mutex; the returned references are stable for the registry's
/// lifetime, so resolve once and cache the pointer on hot paths.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static MetricsRegistry& Default();

  /// Get-or-create. Aborts if `name` is already registered as a different
  /// metric kind (duplicate registration is a programming error).
  Counter& counter(const std::string& name)
      INDOORFLOW_LOCKS_EXCLUDED(mu_);
  Gauge& gauge(const std::string& name) INDOORFLOW_LOCKS_EXCLUDED(mu_);
  Histogram& histogram(const std::string& name)
      INDOORFLOW_LOCKS_EXCLUDED(mu_);

  /// One JSON object over every registered metric:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"count", "sum", "mean", "min", "max",
  ///                          "p50", "p90", "p95", "p99"}, ...}}
  /// Names sort lexicographically; always valid JSON (non-finite values
  /// are emitted as 0).
  std::string DumpJson() const INDOORFLOW_LOCKS_EXCLUDED(mu_);

  /// Prometheus exposition-format text ("/metrics" style): counters and
  /// gauges as single samples, histograms as summaries with quantile
  /// labels. Metric names are sanitized ('.' and '-' become '_') and
  /// prefixed "indoorflow_".
  std::string DumpText() const INDOORFLOW_LOCKS_EXCLUDED(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetOrCreate(const std::string& name, Kind kind)
      INDOORFLOW_REQUIRES(mu_);

  mutable Mutex mu_ INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceExecutor)
      INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceMetrics) =
          Mutex(LockRank::kMetrics);
  std::map<std::string, Entry> metrics_ INDOORFLOW_GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// Trace sink: Chrome trace-event JSONL, behind a runtime flag.

/// Opens `path` and starts appending trace events to it (Chrome
/// chrome://tracing / Perfetto "trace event" JSON array format, one event
/// per line). Fails if a sink is already active or the file can't be
/// opened.
Status StartTracing(const std::string& path);

/// Finalizes the JSON array and closes the sink. No-op when inactive.
void StopTracing();

/// Whether a trace sink is currently active (one relaxed atomic load —
/// cheap enough to gate per-query work).
bool TracingEnabled();

/// Starts tracing to $INDOORFLOW_TRACE when that variable is set and no
/// sink is active; returns true if tracing is active afterwards. The CLI
/// and examples call this at startup, making the sink a runtime flag.
bool InitTracingFromEnv();

/// Appends one complete ("ph":"X") event. `start_us`/`dur_us` are in
/// MonotonicNowNs()/1000 units. No-op when tracing is inactive.
void EmitTraceEvent(const char* name, int64_t start_us, int64_t dur_us);

/// RAII span: on destruction records the elapsed microseconds into
/// `latency_us` (when non-null) and, when tracing is enabled and
/// `trace_name` was given, emits a trace event covering the scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* latency_us,
                       const char* trace_name = nullptr)
      : histogram_(latency_us),
        trace_name_(trace_name),
        start_ns_(MonotonicNowNs()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

  int64_t ElapsedNs() const { return MonotonicNowNs() - start_ns_; }

 private:
  Histogram* histogram_;
  const char* trace_name_;
  int64_t start_ns_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_COMMON_METRICS_H_
