#include "src/common/metrics.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#include <utility>

#include "src/common/log.h"

namespace indoorflow {

namespace {

// Formats a double as a JSON-safe token (non-finite values become 0, which
// keeps every dump parseable).
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void Gauge::Add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

int Histogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // zero, negatives, NaN
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // value = frac * 2^exp
  // value lies in octave [2^(exp-1), 2^exp); frac in [0.5, 1).
  const int octave = exp - 1 - kMinExponent;
  if (octave < 0) return 0;
  if (octave >= kNumOctaves) return kNumBuckets - 1;
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return octave * kSubBuckets + sub;
}

double Histogram::BucketLowerBound(int index) {
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                    kMinExponent + octave);
}

void Histogram::Record(double value) {
  // The log-scale buckets only represent positive finite values; a NaN or
  // infinity would also poison sum() forever, so drop bad samples.
  if (!std::isfinite(value) || value <= 0.0) return;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
  cur = min_.load(std::memory_order_relaxed);
  while (value < cur && !min_.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur && !max_.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Percentile(double q) const {
  const int64_t total = count();
  if (total == 0) return 0.0;
  // The extremes are tracked exactly; bucket estimates for interior ranks.
  if (q <= 0.0) return min();
  if (q >= 100.0) return max();
  // The sample with (0-based) rank floor(q/100 * (total-1)), interpolated
  // linearly across its bucket.
  const double rank = q / 100.0 * static_cast<double>(total - 1);
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(seen + in_bucket)) {
      const double lo = BucketLowerBound(i);
      const double hi = BucketLowerBound(i + 1);
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      double value = lo + within * (hi - lo);
      // The exact envelope tightens the bucket estimate at the tails.
      if (value < min()) value = min();
      if (value > max()) value = max();
      return value;
    }
    seen += in_bucket;
  }
  return max();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetOrCreate(const std::string& name,
                                                     Kind kind) {
  INDOORFLOW_CHECK(!name.empty());
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  if (it->second.kind != kind) {
    Log(LogLevel::kError, "metrics",
        "metric already registered as a different kind")
        .Field("metric", name);
    std::abort();
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  return *GetOrCreate(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  return *GetOrCreate(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  return *GetOrCreate(name, Kind::kHistogram).histogram;
}

std::string MetricsRegistry::DumpJson() const {
  MutexLock lock(mu_);
  std::string out = "{";
  for (const Kind kind :
       {Kind::kCounter, Kind::kGauge, Kind::kHistogram}) {
    const char* section = kind == Kind::kCounter  ? "counters"
                          : kind == Kind::kGauge  ? "gauges"
                                                  : "histograms";
    if (kind != Kind::kCounter) out += ",";
    out += "\"";
    out += section;
    out += "\":{";
    bool first = true;
    for (const auto& [name, entry] : metrics_) {
      if (entry.kind != kind) continue;
      if (!first) out += ",";
      first = false;
      out += "\"" + name + "\":";
      switch (kind) {
        case Kind::kCounter:
          out += std::to_string(entry.counter->value());
          break;
        case Kind::kGauge:
          out += JsonNumber(entry.gauge->value());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *entry.histogram;
          const int64_t n = h.count();
          const double mean =
              n > 0 ? h.sum() / static_cast<double>(n) : 0.0;
          out += "{\"count\":" + std::to_string(n);
          out += ",\"sum\":" + JsonNumber(h.sum());
          out += ",\"mean\":" + JsonNumber(mean);
          out += ",\"min\":" + JsonNumber(h.min());
          out += ",\"max\":" + JsonNumber(h.max());
          out += ",\"p50\":" + JsonNumber(h.Percentile(50));
          out += ",\"p90\":" + JsonNumber(h.Percentile(90));
          out += ",\"p95\":" + JsonNumber(h.Percentile(95));
          out += ",\"p99\":" + JsonNumber(h.Percentile(99));
          out += "}";
          break;
        }
      }
    }
    out += "}";
  }
  out += "}";
  return out;
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "indoorflow_";
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::DumpText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, entry] : metrics_) {
    const std::string prom = PrometheusName(name);
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + prom + " counter\n";
        out += prom + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + prom + " gauge\n";
        out += prom + " " + JsonNumber(entry.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += "# TYPE " + prom + " summary\n";
        for (const double q : {50.0, 90.0, 95.0, 99.0}) {
          char label[16];
          std::snprintf(label, sizeof(label), "%g", q / 100.0);
          out += prom + "{quantile=\"" + label + "\"} " +
                 JsonNumber(h.Percentile(q)) + "\n";
        }
        out += prom + "_sum " + JsonNumber(h.sum()) + "\n";
        out += prom + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Trace sink.

namespace {

// One process-wide sink. `enabled` is the lock-free fast-path gate; the
// stream and event separator state live behind the annotated mutex.
struct TraceSink {
  std::atomic<bool> enabled{false};
  Mutex mu INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceExecutor)
      INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceMetrics) =
          Mutex(LockRank::kMetrics);
  std::FILE* file INDOORFLOW_GUARDED_BY(mu) = nullptr;
  bool first_event INDOORFLOW_GUARDED_BY(mu) = true;
};

TraceSink& Sink() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

}  // namespace

Status StartTracing(const std::string& path) {
  TraceSink& sink = Sink();
  MutexLock lock(sink.mu);
  if (sink.file != nullptr) {
    return Status::FailedPrecondition("trace sink already active");
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::NotFound("cannot open trace file '" + path + "'");
  }
  std::fputs("[\n", file);
  sink.file = file;
  sink.first_event = true;
  sink.enabled.store(true, std::memory_order_release);
  return Status::OK();
}

void StopTracing() {
  TraceSink& sink = Sink();
  MutexLock lock(sink.mu);
  if (sink.file == nullptr) return;
  sink.enabled.store(false, std::memory_order_release);
  std::fputs("\n]\n", sink.file);
  std::fclose(sink.file);
  sink.file = nullptr;
}

bool TracingEnabled() {
  return Sink().enabled.load(std::memory_order_relaxed);
}

bool InitTracingFromEnv() {
  if (TracingEnabled()) return true;
  const char* path = std::getenv("INDOORFLOW_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  return StartTracing(path).ok();
}

void EmitTraceEvent(const char* name, int64_t start_us, int64_t dur_us) {
  TraceSink& sink = Sink();
  if (!sink.enabled.load(std::memory_order_relaxed)) return;
  const size_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % 100000;
  MutexLock lock(sink.mu);
  if (sink.file == nullptr) return;  // raced with StopTracing
  if (!sink.first_event) std::fputs(",\n", sink.file);
  sink.first_event = false;
  std::fprintf(sink.file,
               "{\"name\":\"%s\",\"cat\":\"indoorflow\",\"ph\":\"X\","
               "\"ts\":%lld,\"dur\":%lld,\"pid\":1,\"tid\":%zu}",
               name, static_cast<long long>(start_us),
               static_cast<long long>(dur_us), tid);
}

ScopedTimer::~ScopedTimer() {
  const int64_t elapsed_ns = ElapsedNs();
  if (histogram_ != nullptr) {
    histogram_->Record(static_cast<double>(elapsed_ns) / 1000.0);
  }
  if (trace_name_ != nullptr && TracingEnabled()) {
    EmitTraceEvent(trace_name_, start_ns_ / 1000, elapsed_ns / 1000);
  }
}

}  // namespace indoorflow
