// End-to-end tests: hand-crafted scenarios with known ground truth, plus a
// full generated-dataset pipeline exercise.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/indoor/plan_builders.h"

namespace indoorflow {
namespace {

// A fully hand-crafted scenario on the tiny plan where flows are known in
// closed form: devices parked inside rooms, objects that never move.
class HandcraftedScenario : public ::testing::Test {
 protected:
  HandcraftedScenario() : built_(BuildTinyPlan()), graph_(built_.plan) {
    // dev0 inside room_a, dev1 inside room_b, dev2 in the hallway.
    deployment_.AddDevice(Circle{{5, 8}, 1.0});
    deployment_.AddDevice(Circle{{15, 8}, 1.0});
    deployment_.AddDevice(Circle{{10, 2}, 1.0});
    deployment_.BuildIndex();

    // POIs: the three partitions themselves.
    pois_.push_back(Poi{0, "room_a", Polygon::Rectangle(0, 4, 10, 12)});
    pois_.push_back(Poi{1, "room_b", Polygon::Rectangle(10, 4, 20, 12)});
    pois_.push_back(Poi{2, "hallway", Polygon::Rectangle(0, 0, 20, 4)});

    // Five objects parked at dev0 the whole window, one at dev1.
    for (ObjectId o = 0; o < 5; ++o) table_.Append({o, 0, 0, 100});
    table_.Append({5, 1, 0, 100});
    INDOORFLOW_CHECK(table_.Finalize().ok());
  }

  QueryEngine MakeEngine(bool topology) {
    EngineConfig config;
    config.vmax = 1.0;
    config.topology = topology ? TopologyMode::kExact : TopologyMode::kOff;
    return QueryEngine(built_.plan, graph_, deployment_, table_, pois_,
                       config);
  }

  BuiltPlan built_;
  DoorGraph graph_;
  Deployment deployment_;
  ObjectTrackingTable table_;
  PoiSet pois_;
};

TEST_F(HandcraftedScenario, SnapshotFlowsMatchClosedForm) {
  const QueryEngine engine = MakeEngine(false);
  // Each parked object's UR is its device's range (first record, active):
  // presence in the room = pi * 1^2 / 80.
  const double unit = std::numbers::pi / 80.0;
  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    const auto top = engine.SnapshotTopK(50.0, 3, algo);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].poi, 0);  // room_a: 5 objects
    EXPECT_NEAR(top[0].flow, 5.0 * unit, 5.0 * 0.012);
    EXPECT_EQ(top[1].poi, 1);  // room_b: 1 object
    EXPECT_NEAR(top[1].flow, 1.0 * unit, 0.012);
    EXPECT_EQ(top[2].poi, 2);  // hallway: nobody
    EXPECT_DOUBLE_EQ(top[2].flow, 0.0);
  }
}

TEST_F(HandcraftedScenario, IntervalFlowsMatchClosedForm) {
  const QueryEngine engine = MakeEngine(false);
  const double unit = std::numbers::pi / 80.0;
  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    const auto top = engine.IntervalTopK(10.0, 90.0, 3, algo);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].poi, 0);
    EXPECT_NEAR(top[0].flow, 5.0 * unit, 5.0 * 0.012);
    EXPECT_EQ(top[1].poi, 1);
    EXPECT_NEAR(top[1].flow, 1.0 * unit, 0.012);
  }
}

TEST_F(HandcraftedScenario, TopologyCheckKeepsParkedObjectsIntact) {
  // Parked objects have no rd_pre, so no reachability constraint applies;
  // flows must be identical with and without the check.
  const QueryEngine plain = MakeEngine(false);
  const QueryEngine topo = MakeEngine(true);
  const auto a = plain.SnapshotTopK(50.0, 3, Algorithm::kIterative);
  const auto b = topo.SnapshotTopK(50.0, 3, Algorithm::kIterative);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].poi, b[i].poi);
    EXPECT_NEAR(a[i].flow, b[i].flow, 1e-9);
  }
}

TEST_F(HandcraftedScenario, MovingObjectCountsInBothRooms) {
  // Add an object detected at dev0 then dev1: in the interval query it can
  // have visited both rooms (and the hallway between the doors).
  table_ = ObjectTrackingTable();
  table_.Append({0, 0, 0, 10});
  table_.Append({0, 1, 40, 50});
  INDOORFLOW_CHECK(table_.Finalize().ok());
  const QueryEngine engine = MakeEngine(false);
  const auto full = engine.IntervalTopK(0.0, 50.0, 3, Algorithm::kIterative);
  ASSERT_EQ(full.size(), 3u);
  double room_a_flow = 0.0;
  double room_b_flow = 0.0;
  for (const PoiFlow& f : full) {
    if (f.poi == 0) room_a_flow = f.flow;
    if (f.poi == 1) room_b_flow = f.flow;
  }
  EXPECT_GT(room_a_flow, 0.0);
  EXPECT_GT(room_b_flow, 0.0);
}

TEST(GeneratedPipelineTest, OfficeEndToEnd) {
  OfficeDatasetConfig config;
  config.num_objects = 25;
  config.duration = 900.0;
  config.seed = 77;
  const Dataset ds = GenerateOfficeDataset(config);
  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kPartition;
  const QueryEngine engine(ds, engine_config);

  const Timestamp mid = (ds.window_start + ds.window_end) / 2.0;
  const auto snap = engine.SnapshotTopK(mid, 10, Algorithm::kJoin);
  ASSERT_EQ(snap.size(), 10u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LE(snap[i].flow, snap[i - 1].flow);
  }

  const auto interval =
      engine.IntervalTopK(mid - 200.0, mid + 200.0, 10, Algorithm::kJoin);
  ASSERT_EQ(interval.size(), 10u);
  EXPECT_GT(interval[0].flow, 0.0);
  // Interval flows dominate snapshot flows in aggregate: URs are larger.
  double snap_total = 0.0;
  double interval_total = 0.0;
  for (const PoiFlow& f : snap) snap_total += f.flow;
  for (const PoiFlow& f : interval) interval_total += f.flow;
  EXPECT_GE(interval_total, snap_total * 0.5);
}

TEST(GeneratedPipelineTest, CphEndToEnd) {
  CphDatasetConfig config;
  config.num_passengers = 25;
  config.window = 1800.0;
  const Dataset ds = GenerateCphLikeDataset(config);
  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kOff;
  const QueryEngine engine(ds, engine_config);
  const auto iter = engine.IntervalTopK(300.0, 900.0, 8, Algorithm::kIterative);
  const auto join = engine.IntervalTopK(300.0, 900.0, 8, Algorithm::kJoin);
  ASSERT_EQ(iter.size(), join.size());
  double iter_total = 0.0;
  double join_total = 0.0;
  for (const PoiFlow& f : iter) iter_total += f.flow;
  for (const PoiFlow& f : join) join_total += f.flow;
  EXPECT_NEAR(iter_total, join_total, 1e-6);
}

}  // namespace
}  // namespace indoorflow
