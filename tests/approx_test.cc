// Tests for sampling-based approximate evaluation (src/core/approx.h and
// its engine/streaming integration): the deterministic sampler, the
// Horvitz–Thompson estimator and its error bounds (empirical 95% CI
// coverage over repeated seeds), adaptive exact<->sampled switching, and
// the differential guarantee that approx=exact stays bit-identical to the
// pre-approximation query paths.

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/core/approx.h"
#include "src/core/engine.h"
#include "src/core/query_profile.h"
#include "src/core/streaming.h"
#include "src/sim/generators.h"

namespace indoorflow {
namespace {

// ---------------------------------------------------------------------------
// Primitives.

TEST(ApproxPrimitivesTest, ModeNamesRoundTrip) {
  for (const ApproxMode mode :
       {ApproxMode::kExact, ApproxMode::kSampled, ApproxMode::kAdaptive}) {
    ApproxMode parsed = ApproxMode::kExact;
    ASSERT_TRUE(ApproxModeFromName(ApproxModeName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  ApproxMode parsed = ApproxMode::kSampled;
  EXPECT_FALSE(ApproxModeFromName("bogus", &parsed));
  EXPECT_EQ(parsed, ApproxMode::kSampled);  // untouched on failure
}

TEST(ApproxPrimitivesTest, ShouldSampleHonorsBudgetAndMode) {
  ApproxConfig config;
  config.sample_budget = 10;

  config.mode = ApproxMode::kExact;
  EXPECT_FALSE(ShouldSample(config, 1000));

  config.mode = ApproxMode::kSampled;
  EXPECT_TRUE(ShouldSample(config, 1000));
  EXPECT_FALSE(ShouldSample(config, 10));  // budget covers the population
  EXPECT_FALSE(ShouldSample(config, 5));

  config.mode = ApproxMode::kAdaptive;
  config.adaptive_min_population = 100;
  EXPECT_FALSE(ShouldSample(config, 99));
  EXPECT_TRUE(ShouldSample(config, 100));
  EXPECT_TRUE(ShouldSample(config, 1000));

  config.sample_budget = 0;  // no budget, never sample
  EXPECT_FALSE(ShouldSample(config, 1000));
}

TEST(ApproxPrimitivesTest, SampleIndicesDeterministicSortedDistinct) {
  const auto a = SampleIndices(100, 10, 42);
  const auto b = SampleIndices(100, 10, 42);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 10u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  const std::set<size_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size());
  for (const size_t index : a) EXPECT_LT(index, 100u);

  const auto c = SampleIndices(100, 10, 43);
  EXPECT_NE(a, c) << "distinct seeds should draw distinct samples";

  // Budget >= population degrades to the identity permutation.
  const auto all = SampleIndices(5, 10, 42);
  EXPECT_EQ(all, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ApproxPrimitivesTest, MixSampleSeedSeparatesQueries) {
  const uint64_t base = 7;
  EXPECT_EQ(MixSampleSeed(base, 100.0, 200.0),
            MixSampleSeed(base, 100.0, 200.0));
  EXPECT_NE(MixSampleSeed(base, 100.0, 200.0),
            MixSampleSeed(base, 100.0, 300.0));
  EXPECT_NE(MixSampleSeed(base, 100.0, 200.0),
            MixSampleSeed(base + 1, 100.0, 200.0));
}

TEST(ApproxPrimitivesTest, EstimateFlowsExactWhenPopulationCovered) {
  std::unordered_map<PoiId, double> sums{{0, 2.5}, {1, 0.5}};
  std::unordered_map<PoiId, double> sums_sq{{0, 1.0}, {1, 0.25}};
  const auto estimates = EstimateFlows({0, 1, 2}, sums, sums_sq, 4, 4);
  ASSERT_EQ(estimates.size(), 3u);
  for (const FlowEstimate& est : estimates) {
    EXPECT_TRUE(est.exact);
    EXPECT_EQ(est.std_err, 0.0);
    EXPECT_EQ(est.ci_low, est.value);
    EXPECT_EQ(est.ci_high, est.value);
  }
  EXPECT_EQ(estimates[0].value, 2.5);
  EXPECT_EQ(estimates[1].value, 0.5);
  EXPECT_EQ(estimates[2].value, 0.0);  // absent => zero flow
}

TEST(ApproxPrimitivesTest, EstimateFlowsScalesAndBoundsError) {
  // 2 of 8 objects sampled, both with presence 1.0 at POI 0: the HT
  // estimate is (8/2) * 2 = 8 with zero sample variance.
  std::unordered_map<PoiId, double> sums{{0, 2.0}};
  std::unordered_map<PoiId, double> sums_sq{{0, 2.0}};
  const auto estimates = EstimateFlows({0}, sums, sums_sq, 8, 2);
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_FALSE(estimates[0].exact);
  EXPECT_DOUBLE_EQ(estimates[0].value, 8.0);
  EXPECT_DOUBLE_EQ(estimates[0].std_err, 0.0);

  // Mixed presences carry positive error, and the interval brackets the
  // point estimate with the low end clamped at zero.
  sums[0] = 1.0;
  sums_sq[0] = 1.0;
  const auto noisy = EstimateFlows({0}, sums, sums_sq, 8, 2);
  EXPECT_GT(noisy[0].std_err, 0.0);
  EXPECT_GE(noisy[0].ci_low, 0.0);
  EXPECT_LT(noisy[0].ci_low, noisy[0].value);
  EXPECT_GT(noisy[0].ci_high, noisy[0].value);
}

TEST(ApproxPrimitivesTest, EstimateFlowsSingleSampleErrorUndefined) {
  // One draw from eight still scales the point estimate, but a single
  // sample carries no within-sample variance: the error is undefined
  // (NaN), never a confident 0.
  std::unordered_map<PoiId, double> sums{{0, 1.0}};
  std::unordered_map<PoiId, double> sums_sq{{0, 1.0}};
  const auto estimates = EstimateFlows({0}, sums, sums_sq, 8, 1);
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_FALSE(estimates[0].exact);
  EXPECT_DOUBLE_EQ(estimates[0].value, 8.0);
  EXPECT_TRUE(std::isnan(estimates[0].std_err));
  EXPECT_TRUE(std::isnan(estimates[0].ci_low));
  EXPECT_TRUE(std::isnan(estimates[0].ci_high));
}

TEST(ApproxPrimitivesTest, TopKEstimatesMatchesTopKContract) {
  std::vector<FlowEstimate> estimates;
  for (const auto& [poi, value] :
       std::vector<std::pair<PoiId, double>>{{3, 1.0}, {1, 2.0}, {2, 2.0}}) {
    FlowEstimate est;
    est.poi = poi;
    est.value = value;
    estimates.push_back(est);
  }
  const auto top = TopKEstimates(estimates, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].poi, 1);  // tie at 2.0 broken toward the lower id
  EXPECT_EQ(top[1].poi, 2);
  EXPECT_TRUE(TopKEstimates(estimates, 0).empty());
  EXPECT_EQ(TopKEstimates(estimates, 10).size(), 3u);
}

// ---------------------------------------------------------------------------
// Engine integration.

class ApproxEngineFixture : public ::testing::Test {
 protected:
  ApproxEngineFixture() {
    OfficeDatasetConfig config;
    config.num_objects = 60;
    config.duration = 900.0;
    config.seed = 7;
    dataset_ = GenerateOfficeDataset(config);
  }

  QueryEngine MakeEngine(const ApproxConfig& approx) const {
    EngineConfig config;
    config.vmax = dataset_.vmax;
    config.approx = approx;
    return QueryEngine(dataset_, config);
  }

  int AllPois() const { return static_cast<int>(dataset_.pois.size()); }

  Dataset dataset_;
  const Timestamp t_ = 450.0;
  const Timestamp ts_ = 300.0;
  const Timestamp te_ = 600.0;
};

// Flows compare with == on purpose: the exact mode's contract is
// bit-identity, not closeness.
void ExpectSameFlows(const std::vector<PoiFlow>& a,
                     const std::vector<PoiFlow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].poi, b[i].poi) << "rank " << i;
    EXPECT_EQ(a[i].flow, b[i].flow) << "rank " << i;
  }
}

TEST_F(ApproxEngineFixture, ExactModeIsBitIdenticalAcrossQueryMethods) {
  const QueryEngine plain = MakeEngine(ApproxConfig{});
  ApproxConfig exact;
  exact.mode = ApproxMode::kExact;
  const QueryEngine configured = MakeEngine(exact);

  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    ExpectSameFlows(plain.SnapshotTopK(t_, AllPois(), algo),
                    configured.SnapshotTopK(t_, AllPois(), algo));
    ExpectSameFlows(plain.IntervalTopK(ts_, te_, AllPois(), algo),
                    configured.IntervalTopK(ts_, te_, AllPois(), algo));
  }

  // The estimate API in exact mode returns the same flows too, flagged
  // exact with collapsed intervals.
  const auto reference = plain.SnapshotTopK(t_, AllPois(),
                                            Algorithm::kIterative);
  const auto estimates = configured.SnapshotTopKEstimate(t_, AllPois(),
                                                         exact);
  ExpectSameFlows(reference, EstimatesToFlows(estimates));
  for (const FlowEstimate& est : estimates) {
    EXPECT_TRUE(est.exact);
    EXPECT_EQ(est.std_err, 0.0);
  }
  ExpectSameFlows(
      plain.IntervalTopK(ts_, te_, AllPois(), Algorithm::kIterative),
      EstimatesToFlows(
          configured.IntervalTopKEstimate(ts_, te_, AllPois(), exact)));
}

TEST_F(ApproxEngineFixture, SampledModeIsDeterministicPerSeed) {
  ApproxConfig sampled;
  sampled.mode = ApproxMode::kSampled;
  sampled.sample_budget = 16;
  const QueryEngine engine = MakeEngine(sampled);

  const auto first = engine.SnapshotTopKEstimate(t_, AllPois(), sampled);
  const auto second = engine.SnapshotTopKEstimate(t_, AllPois(), sampled);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].poi, second[i].poi);
    EXPECT_EQ(first[i].value, second[i].value);
    EXPECT_EQ(first[i].std_err, second[i].std_err);
  }

  ApproxConfig reseeded = sampled;
  reseeded.seed = sampled.seed + 1;
  const auto other = engine.SnapshotTopKEstimate(t_, AllPois(), reseeded);
  bool any_difference = false;
  for (size_t i = 0; i < first.size() && i < other.size(); ++i) {
    any_difference = any_difference || first[i].poi != other[i].poi ||
                     first[i].value != other[i].value;
  }
  EXPECT_TRUE(any_difference) << "a new seed should draw a new sample";
}

TEST_F(ApproxEngineFixture, EngineRoutingMatchesExplicitEstimateCalls) {
  ApproxConfig sampled;
  sampled.mode = ApproxMode::kSampled;
  sampled.sample_budget = 16;
  const QueryEngine engine = MakeEngine(sampled);

  // SnapshotTopK/IntervalTopK on a sampled-config engine route iterative
  // queries through the estimator; the values must match the explicit
  // estimate API exactly.
  ExpectSameFlows(
      engine.SnapshotTopK(t_, AllPois(), Algorithm::kIterative),
      EstimatesToFlows(engine.SnapshotTopKEstimate(t_, AllPois(), sampled)));
  ExpectSameFlows(
      engine.IntervalTopK(ts_, te_, AllPois(), Algorithm::kIterative),
      EstimatesToFlows(
          engine.IntervalTopKEstimate(ts_, te_, AllPois(), sampled)));

  // The join algorithm never samples, whatever the config says.
  const QueryEngine plain = MakeEngine(ApproxConfig{});
  ExpectSameFlows(engine.SnapshotTopK(t_, AllPois(), Algorithm::kJoin),
                  plain.SnapshotTopK(t_, AllPois(), Algorithm::kJoin));
}

TEST_F(ApproxEngineFixture, ExactEntrypointsBypassSampledConfig) {
  // The *Exact entrypoints are the per-call escape hatch from the
  // config-based routing: on a sampled-config engine they must stay
  // bit-identical to an exact-config engine's SnapshotTopK/IntervalTopK.
  ApproxConfig sampled;
  sampled.mode = ApproxMode::kSampled;
  sampled.sample_budget = 16;
  const QueryEngine engine = MakeEngine(sampled);
  const QueryEngine plain = MakeEngine(ApproxConfig{});

  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    ExpectSameFlows(engine.SnapshotTopKExact(t_, AllPois(), algo),
                    plain.SnapshotTopK(t_, AllPois(), algo));
    ExpectSameFlows(engine.IntervalTopKExact(ts_, te_, AllPois(), algo),
                    plain.IntervalTopK(ts_, te_, AllPois(), algo));
  }
}

TEST_F(ApproxEngineFixture, AdaptiveSwitchesOnPopulation) {
  ApproxConfig adaptive;
  adaptive.mode = ApproxMode::kAdaptive;
  adaptive.sample_budget = 8;
  const QueryEngine engine = MakeEngine(adaptive);

  // Threshold above any possible population: evaluates exactly.
  adaptive.adaptive_min_population = 1 << 20;
  QueryStats exact_stats;
  const auto exact_estimates = engine.SnapshotTopKEstimate(
      t_, AllPois(), adaptive, nullptr, &exact_stats);
  ASSERT_FALSE(exact_estimates.empty());
  for (const FlowEstimate& est : exact_estimates) EXPECT_TRUE(est.exact);
  EXPECT_EQ(exact_stats.sample_size, exact_stats.sample_population);

  // Threshold of 1: any population >= budget samples.
  adaptive.adaptive_min_population = 1;
  QueryStats sampled_stats;
  QueryProfile profile;
  const auto sampled_estimates = engine.SnapshotTopKEstimate(
      t_, AllPois(), adaptive, nullptr, &sampled_stats, &profile);
  ASSERT_GT(sampled_stats.sample_population, adaptive.sample_budget)
      << "fixture must have more candidates than the budget";
  EXPECT_EQ(sampled_stats.sample_size, adaptive.sample_budget);
  EXPECT_TRUE(profile.sampled);
  EXPECT_EQ(profile.approx_mode, "adaptive");
  bool any_estimated = false;
  for (const FlowEstimate& est : sampled_estimates) {
    any_estimated = any_estimated || !est.exact;
  }
  EXPECT_TRUE(any_estimated);
}

TEST_F(ApproxEngineFixture, ConfidenceIntervalsCoverTheExactFlow) {
  const QueryEngine engine = MakeEngine(ApproxConfig{});
  const auto exact =
      engine.SnapshotTopK(t_, AllPois(), Algorithm::kIterative);
  std::vector<double> exact_flow(dataset_.pois.size(), 0.0);
  for (const PoiFlow& f : exact) {
    exact_flow[static_cast<size_t>(f.poi)] = f.flow;
  }

  ApproxConfig sampled;
  sampled.mode = ApproxMode::kSampled;
  sampled.sample_budget = 24;

  int covered = 0;
  int trials = 0;
  constexpr int kSeeds = 40;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    sampled.seed = static_cast<uint64_t>(seed);
    const auto estimates =
        engine.SnapshotTopKEstimate(t_, AllPois(), sampled);
    for (const FlowEstimate& est : estimates) {
      const double truth = exact_flow[static_cast<size_t>(est.poi)];
      // Only POIs with real flow test the interval meaningfully; a POI
      // nobody visits is trivially covered by [0, 0].
      if (truth < 0.05 || est.exact) continue;
      ++trials;
      covered += (est.ci_low <= truth && truth <= est.ci_high) ? 1 : 0;
    }
  }
  ASSERT_GT(trials, 100) << "fixture too small to measure coverage";
  const double coverage = static_cast<double>(covered) / trials;
  // Nominal coverage is 0.95; the normal approximation at n=24 plus the
  // clamp at zero undercover slightly, so accept anything >= 0.85.
  EXPECT_GE(coverage, 0.85) << covered << "/" << trials;
}

// ---------------------------------------------------------------------------
// Streaming integration.

class ApproxStreamingFixture : public ::testing::Test {
 protected:
  ApproxStreamingFixture() {
    OfficeDatasetConfig config;
    config.num_objects = 60;
    config.duration = 900.0;
    config.seed = 7;
    dataset_ = GenerateOfficeDataset(config);
  }

  std::unique_ptr<StreamingMonitor> MakeMonitor(
      const ApproxConfig& approx) const {
    StreamingOptions options;
    options.vmax = dataset_.vmax;
    options.expiry_seconds = 1e9;
    options.approx = approx;
    auto monitor = std::make_unique<StreamingMonitor>(dataset_.deployment,
                                                      dataset_.pois,
                                                      options);
    std::vector<RawReading> replay;
    for (const ObjectId object : dataset_.ott.objects()) {
      for (const auto index : dataset_.ott.ChainOf(object)) {
        const TrackingRecord& record = dataset_.ott.record(index);
        replay.push_back({object, record.device_id, record.ts});
        replay.push_back({object, record.device_id, record.te});
      }
    }
    EXPECT_TRUE(monitor->IngestBatch(replay).ok());
    return monitor;
  }

  Dataset dataset_;
  const Timestamp t_ = 450.0;
};

TEST_F(ApproxStreamingFixture, ExactOptionsKeepCurrentTopKIdentical) {
  const auto plain = MakeMonitor(ApproxConfig{});
  ApproxConfig exact;
  exact.mode = ApproxMode::kExact;
  const auto configured = MakeMonitor(exact);
  const int k = static_cast<int>(dataset_.pois.size());

  ExpectSameFlows(plain->CurrentTopK(t_, k), configured->CurrentTopK(t_, k));

  // The estimate API under an exact config wraps the exact answer.
  const auto estimates = configured->CurrentTopKEstimate(t_, k, exact);
  ExpectSameFlows(plain->CurrentTopK(t_, k), EstimatesToFlows(estimates));
  for (const FlowEstimate& est : estimates) EXPECT_TRUE(est.exact);
}

TEST_F(ApproxStreamingFixture, SampledLiveQueriesAreDeterministic) {
  ApproxConfig sampled;
  sampled.mode = ApproxMode::kSampled;
  sampled.sample_budget = 16;
  const auto monitor = MakeMonitor(sampled);
  const int k = static_cast<int>(dataset_.pois.size());

  Counter& sampled_queries =
      MetricsRegistry::Default().counter("streaming.sampled_queries");
  const int64_t before = sampled_queries.value();

  const auto first = monitor->CurrentTopKEstimate(t_, k, sampled);
  const auto second = monitor->CurrentTopKEstimate(t_, k, sampled);
  ASSERT_EQ(first.size(), second.size());
  bool any_estimated = false;
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].poi, second[i].poi);
    EXPECT_EQ(first[i].value, second[i].value);
    EXPECT_EQ(first[i].std_err, second[i].std_err);
    any_estimated = any_estimated || !first[i].exact;
  }
  EXPECT_TRUE(any_estimated);
  EXPECT_EQ(sampled_queries.value(), before + 2);

  // CurrentTopK on a sampled-config monitor routes through the same
  // estimator, so ranked flows agree exactly.
  ExpectSameFlows(monitor->CurrentTopK(t_, k),
                  EstimatesToFlows(monitor->CurrentTopKEstimate(t_, k,
                                                                sampled)));
}

TEST_F(ApproxStreamingFixture, ExactCurrentTopKBypassesSampledOptions) {
  // The public ExactCurrentTopK ignores StreamingOptions::approx — it is
  // how the serving layer honors a pinned approx=exact on a
  // sampled-default monitor.
  ApproxConfig sampled;
  sampled.mode = ApproxMode::kSampled;
  sampled.sample_budget = 16;
  const auto monitor = MakeMonitor(sampled);
  const auto plain = MakeMonitor(ApproxConfig{});
  const int k = static_cast<int>(dataset_.pois.size());

  ExpectSameFlows(monitor->ExactCurrentTopK(t_, k),
                  plain->CurrentTopK(t_, k));
}

}  // namespace
}  // namespace indoorflow
