// Tests for the shopping-mall plan family: loop topology (cyclic door
// graph, two routes between shops), structural counts, dataset generation,
// and end-to-end queries over a cyclic plan.

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/indoor/indoor_distance.h"

namespace indoorflow {
namespace {

PartitionId FindPartition(const FloorPlan& plan, const std::string& name) {
  for (PartitionId id = 0; id < static_cast<PartitionId>(plan.partitions().size());
       ++id) {
    if (plan.partition(id).name == name) return id;
  }
  ADD_FAILURE() << "no partition named " << name;
  return kInvalidPartition;
}

TEST(MallPlanTest, StructuralCounts) {
  MallPlanConfig config;
  const BuiltPlan built = BuildMallPlan(config);
  // 2 shop rows + 2 shop sides + 4 corridors + 2 anchors + food court.
  const size_t expected_partitions =
      2 * static_cast<size_t>(config.shops_per_row) +
      2 * static_cast<size_t>(config.shops_per_side) + 4 + 3;
  EXPECT_EQ(built.plan.partitions().size(), expected_partitions);
  EXPECT_EQ(built.hallway_ids.size(), 4u);
  EXPECT_EQ(built.room_ids.size(), expected_partitions - 4);
  // One door per shop, 4 corner doors, 1 per anchor, 2 for the food court.
  const size_t expected_doors =
      2 * static_cast<size_t>(config.shops_per_row) +
      2 * static_cast<size_t>(config.shops_per_side) + 4 + 2 + 2;
  EXPECT_EQ(built.plan.doors().size(), expected_doors);
  EXPECT_TRUE(built.plan.Validate().ok());
}

TEST(MallPlanTest, ParametersScaleTheLayout) {
  MallPlanConfig small;
  small.shops_per_row = 3;
  small.shops_per_side = 1;
  const BuiltPlan tiny = BuildMallPlan(small);
  EXPECT_EQ(tiny.plan.partitions().size(), 3u + 3u + 2u + 4u + 3u);
  MallPlanConfig wide;
  wide.shops_per_row = 20;
  const BuiltPlan big = BuildMallPlan(wide);
  EXPECT_GT(big.plan.Bounds().Width(), tiny.plan.Bounds().Width());
}

TEST(MallPlanTest, DoorGraphIsFullyConnected) {
  const BuiltPlan built = BuildMallPlan({});
  const DoorGraph graph(built.plan);
  const IndoorDistance distance(built.plan, graph);
  const PartitionId origin = built.room_ids.front();
  const Point start = built.plan.partition(origin).shape.Centroid();
  for (PartitionId id = 0; id < static_cast<PartitionId>(built.plan.partitions().size());
       ++id) {
    const Point goal = built.plan.partition(id).shape.Centroid();
    const double dist = distance.Between(start, goal);
    EXPECT_TRUE(std::isfinite(dist)) << built.plan.partition(id).name;
  }
}

TEST(MallPlanTest, LoopOffersTwoRoutes) {
  // The corridor ring is a cycle: walking from a south shop to the *north*
  // shop directly above it can go around either side of the central block,
  // and the shortest route must beat walking the full other way around.
  MallPlanConfig config;
  const BuiltPlan built = BuildMallPlan(config);
  const DoorGraph graph(built.plan);
  const FloorPlan& plan = built.plan;

  const PartitionId s0 = FindPartition(plan, "shop_s0");
  const PartitionId n0 = FindPartition(plan, "shop_n0");
  const PartitionId s_last = FindPartition(
      plan, "shop_s" + std::to_string(config.shops_per_row - 1));

  const Point a = plan.partition(s0).shape.Centroid();
  const Point b = plan.partition(n0).shape.Centroid();
  const Point far = plan.partition(s_last).shape.Centroid();

  const IndoorDistance distance(plan, graph);
  const double up_west = distance.Between(a, b);
  ASSERT_TRUE(std::isfinite(up_west));
  // Going around the east side means crossing the full mall width twice;
  // the shortest path (west corner) must be much shorter than that detour.
  const double mall_width = plan.Bounds().Width();
  EXPECT_LT(up_west, mall_width * 2.0);
  // And the far-corner trip is strictly longer than the adjacent one.
  EXPECT_GT(distance.Between(a, far), up_west * 0.5);
}

TEST(MallPlanTest, CornerDistanceUsesTheRing) {
  // Between two adjacent corners of the loop the path stays inside the two
  // corridor segments: distance ~ sum of the leg lengths, not a detour
  // through shops.
  const MallPlanConfig config;
  const BuiltPlan built = BuildMallPlan(config);
  const DoorGraph graph(built.plan);
  const FloorPlan& plan = built.plan;
  const PartitionId south = FindPartition(plan, "corridor_south");
  const PartitionId north = FindPartition(plan, "corridor_north");
  const Point a = plan.partition(south).shape.Centroid();
  const Point b = plan.partition(north).shape.Centroid();
  const IndoorDistance distance(plan, graph);
  const double dist = distance.Between(a, b);
  // The shortest route cuts straight through the food court (its two
  // doors join the south and north corridors), so the distance is close
  // to the Euclidean one — and never below it.
  const Box bounds = plan.Bounds();
  EXPECT_LT(dist, bounds.Width() + 2.0 * bounds.Height());
  EXPECT_GE(dist, Distance(a, b) - 1e-9);
  EXPECT_LT(dist, Distance(a, b) + 2.0 * config.corridor_width +
                      2.0 * config.shop_depth);
}

TEST(MallDatasetTest, GeneratesWellFormedData) {
  MallDatasetConfig config;
  config.num_shoppers = 30;
  config.window = 1800.0;
  config.seed = 31;
  const Dataset mall = GenerateMallDataset(config);
  EXPECT_TRUE(mall.deployment.RangesDisjoint());
  EXPECT_EQ(mall.pois.size(), static_cast<size_t>(config.num_pois));
  EXPECT_GT(mall.ott.size(), 0u);
  for (size_t i = 0; i < mall.ott.size(); ++i) {
    const TrackingRecord& r =
        mall.ott.record(static_cast<RecordIndex>(i));
    EXPECT_GE(r.ts, 0.0);
    EXPECT_LE(r.te, config.window + 1e-9);
    EXPECT_LT(r.device_id,
              static_cast<DeviceId>(mall.deployment.size()));
  }
}

TEST(MallDatasetTest, BeaconsAddDevices) {
  MallDatasetConfig with;
  with.num_shoppers = 0;
  MallDatasetConfig without = with;
  without.beacons_in_shops = false;
  const Dataset a = GenerateMallDataset(with);
  const Dataset b = GenerateMallDataset(without);
  EXPECT_GT(a.deployment.size(), b.deployment.size());
}

TEST(MallDatasetTest, QueriesRunOverTheCyclicPlan) {
  MallDatasetConfig config;
  config.num_shoppers = 40;
  config.window = 1800.0;
  config.seed = 8;
  const Dataset mall = GenerateMallDataset(config);
  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kPartition;
  const QueryEngine engine(mall, engine_config);

  const Timestamp t = config.window / 2.0;
  const auto iter = engine.SnapshotTopK(t, 5, Algorithm::kIterative);
  const auto join = engine.SnapshotTopK(t, 5, Algorithm::kJoin);
  ASSERT_EQ(iter.size(), join.size());
  for (size_t i = 0; i < iter.size(); ++i) {
    EXPECT_EQ(iter[i].poi, join[i].poi) << "rank " << i;
    EXPECT_NEAR(iter[i].flow, join[i].flow, 1e-9);
  }

  const auto interval =
      engine.IntervalTopK(t - 300.0, t + 300.0, 5, Algorithm::kJoin);
  ASSERT_EQ(interval.size(), 5u);
  EXPECT_GT(interval[0].flow, 0.0);
}

}  // namespace
}  // namespace indoorflow
