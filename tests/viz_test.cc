// Tests for the SVG renderer: structural checks on the emitted document
// and rasterization fidelity for regions.

#include <fstream>
#include <numbers>

#include <gtest/gtest.h>

#include "src/indoor/plan_builders.h"
#include "src/viz/svg.h"

namespace indoorflow {
namespace {

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(HeatColorTest, EndpointsAndClamping) {
  EXPECT_EQ(HeatColor(0.0), "#ffffff");
  EXPECT_EQ(HeatColor(-5.0), "#ffffff");
  EXPECT_EQ(HeatColor(1.0), HeatColor(2.0));
  // Red channel stays high, green/blue drop with v.
  const std::string mid = HeatColor(0.5);
  EXPECT_EQ(mid.size(), 7u);
  EXPECT_EQ(mid[0], '#');
}

TEST(SvgCanvasTest, DocumentStructure) {
  SvgCanvas canvas(Box{0, 0, 20, 10}, 10.0);
  const std::string svg = canvas.ToString();
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(svg.find("width=\"200.00\""), std::string::npos);
  EXPECT_NE(svg.find("height=\"100.00\""), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgCanvasTest, YAxisIsFlipped) {
  SvgCanvas canvas(Box{0, 0, 10, 10}, 1.0);
  canvas.DrawText({0, 0}, "origin");
  // World (0,0) is the bottom-left; SVG y grows downward, so it maps to
  // pixel y = 10.
  EXPECT_NE(canvas.ToString().find("y=\"10.00\""), std::string::npos);
}

TEST(SvgCanvasTest, PrimitivesEmitElements) {
  SvgCanvas canvas(Box{0, 0, 10, 10});
  canvas.DrawPolygon(Polygon::Rectangle(1, 1, 3, 3), {});
  canvas.DrawCircle(Circle{{5, 5}, 2.0}, {});
  canvas.DrawSegment({{0, 0}, {10, 10}}, {});
  canvas.DrawText({2, 2}, "hello");
  const std::string svg = canvas.ToString();
  EXPECT_EQ(CountOccurrences(svg, "<polygon"), 1u);
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 1u);
  EXPECT_EQ(CountOccurrences(svg, "<line"), 1u);
  EXPECT_NE(svg.find(">hello</text>"), std::string::npos);
}

TEST(SvgCanvasTest, FloorPlanLayer) {
  const BuiltPlan built = BuildTinyPlan();
  SvgCanvas canvas(built.plan.Bounds().Expanded(1.0));
  canvas.DrawFloorPlan(built.plan);
  const std::string svg = canvas.ToString();
  // 3 partitions + 2 doors.
  EXPECT_EQ(CountOccurrences(svg, "<polygon"), 3u);
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 2u);
}

TEST(SvgCanvasTest, RegionRasterCoversTheRegion) {
  SvgCanvas canvas(Box{0, 0, 10, 10});
  canvas.DrawRegion(Region::Make(Circle{{5, 5}, 2.0}), "#00ff00", 0.5,
                    0.5);
  const std::string svg = canvas.ToString();
  // A 4m-diameter disk at 0.5m cells: ~pi*4/0.25 = ~50 cells; each cell is
  // one "M...z" subpath.
  const size_t cells = CountOccurrences(svg, "z");
  EXPECT_GT(cells, 35u);
  EXPECT_LT(cells, 70u);
}

TEST(SvgCanvasTest, EmptyRegionDrawsNothing) {
  SvgCanvas canvas(Box{0, 0, 10, 10});
  const std::string before = canvas.ToString();
  canvas.DrawRegion(Region(), "#00ff00");
  canvas.DrawRegion(Region::Make(Circle{{50, 50}, 1.0}), "#00ff00");
  EXPECT_EQ(canvas.ToString(), before);
}

TEST(SvgCanvasTest, HeatmapLabelsFlows) {
  PoiSet pois;
  pois.push_back(Poi{0, "a", Polygon::Rectangle(0, 0, 4, 4)});
  pois.push_back(Poi{1, "b", Polygon::Rectangle(6, 0, 9, 4)});
  SvgCanvas canvas(Box{0, 0, 10, 5});
  canvas.DrawFlowHeatmap(pois, {{0, 2.5}, {1, 0.5}});
  const std::string svg = canvas.ToString();
  EXPECT_NE(svg.find(">2.50</text>"), std::string::npos);
  EXPECT_NE(svg.find(">0.50</text>"), std::string::npos);
  // The busier POI is redder (max flow -> pure heat 1.0 fill).
  EXPECT_NE(svg.find(HeatColor(1.0)), std::string::npos);
  EXPECT_NE(svg.find(HeatColor(0.2)), std::string::npos);
}

TEST(SvgCanvasTest, RegionRasterAreaApproximatesTrueArea) {
  // The number of emitted cells times the cell area approximates the
  // region's area (raster uses cell centers, so ~1 cell-perimeter error).
  const Circle c{{10, 10}, 4.0};
  const double cell = 0.25;
  SvgCanvas canvas(Box{0, 0, 20, 20}, 4.0);
  canvas.DrawRegion(Region::Make(c), "#112233", 0.4, cell);
  const std::string svg = canvas.ToString();
  size_t cells = 0;
  for (size_t pos = svg.find('z'); pos != std::string::npos;
       pos = svg.find('z', pos + 1)) {
    ++cells;
  }
  const double raster_area = static_cast<double>(cells) * cell * cell;
  // Perimeter * cell bound on the rasterization error.
  const double perimeter = 2.0 * std::numbers::pi * c.radius;
  EXPECT_NEAR(raster_area, c.Area(), perimeter * cell + 1e-9);
}

TEST(SvgCanvasTest, WriteFileRoundTrip) {
  SvgCanvas canvas(Box{0, 0, 5, 5});
  canvas.DrawText({1, 1}, "file-test");
  const std::string path = ::testing::TempDir() + "/canvas.svg";
  ASSERT_TRUE(canvas.WriteFile(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, canvas.ToString());
}

}  // namespace
}  // namespace indoorflow
