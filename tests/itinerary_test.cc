// Tests for per-object visit reconstruction (BuildItinerary) and the
// engine's per-object accessors (ObjectRegionAt / ActiveObjects).

#include <gtest/gtest.h>

#include <numbers>

#include "src/core/itinerary.h"
#include "src/indoor/plan_builders.h"

namespace indoorflow {
namespace {

// Manual scenario with known geometry: object 7 is pinned at device 0
// (range disk inside POI 0) over [100, 200], then at device 1 (inside POI
// 1) over [300, 400]. The POIs are 2x2 squares circumscribing the 1m
// ranges, so presence while detected is pi/4 and drops to (4-pi)/4 (the
// square's corners) the moment the object goes undetected.
class ItineraryFixture : public ::testing::Test {
 protected:
  ItineraryFixture() : built_(BuildTinyPlan()), graph_(built_.plan) {
    deployment_.AddDevice(Circle{{5, 8}, 1.0});
    deployment_.AddDevice(Circle{{15, 8}, 1.0});
    deployment_.BuildIndex();
    pois_.push_back(Poi{0, "desk_a", Polygon::Rectangle(4, 7, 6, 9)});
    pois_.push_back(Poi{1, "desk_b", Polygon::Rectangle(14, 7, 16, 9)});
    table_.Append({7, 0, 100, 200});
    table_.Append({7, 1, 300, 400});
    EXPECT_TRUE(table_.Finalize().ok());
    EngineConfig config;
    config.vmax = 1.0;
    config.topology = TopologyMode::kOff;
    engine_ = std::make_unique<QueryEngine>(built_.plan, graph_, deployment_,
                                            table_, pois_, config);
  }

  BuiltPlan built_;
  DoorGraph graph_;
  Deployment deployment_;
  PoiSet pois_;
  ObjectTrackingTable table_;
  std::unique_ptr<QueryEngine> engine_;
};

constexpr double kDetectedPresence = std::numbers::pi / 4.0;

TEST_F(ItineraryFixture, ReconstructsBothVisits) {
  ItineraryOptions options;
  options.step = 10.0;
  options.min_presence = 0.5;  // above the corner presence (4-pi)/4
  // Window the reconstruction to the tracked period: outside it the
  // successor/predecessor rings grow without bound and legitimately cover
  // far-away POIs (tested separately below).
  const Itinerary it = BuildItinerary(*engine_, 7, 100.0, 400.0, options);
  ASSERT_EQ(it.visits.size(), 2u);
  EXPECT_EQ(it.object, 7);

  const ItineraryVisit& a = it.visits[0];
  EXPECT_EQ(a.poi, 0);
  EXPECT_DOUBLE_EQ(a.start, 100.0);
  EXPECT_DOUBLE_EQ(a.end, 200.0);
  EXPECT_NEAR(a.mean_presence, kDetectedPresence, 0.03);
  EXPECT_NEAR(a.peak_presence, kDetectedPresence, 0.03);
  EXPECT_GE(a.peak_presence, a.mean_presence - 1e-12);

  const ItineraryVisit& b = it.visits[1];
  EXPECT_EQ(b.poi, 1);
  EXPECT_DOUBLE_EQ(b.start, 300.0);
  EXPECT_DOUBLE_EQ(b.end, 400.0);
  EXPECT_NEAR(b.mean_presence, kDetectedPresence, 0.03);
}

TEST_F(ItineraryFixture, LowThresholdPicksUpUncertaintyTails) {
  // Below the corner presence the visit extends into the undetected gap on
  // both sides (the ring still overlaps the POI's corners).
  ItineraryOptions options;
  options.step = 10.0;
  options.min_presence = 0.1;
  const Itinerary it = BuildItinerary(*engine_, 7, 0.0, 500.0, options);
  ASSERT_GE(it.visits.size(), 2u);
  const ItineraryVisit& a = it.visits[0];
  EXPECT_EQ(a.poi, 0);
  EXPECT_LT(a.start, 100.0);  // ring overlap before the first detection
  EXPECT_GT(a.end, 200.0);    // and after it ends
  EXPECT_NEAR(a.peak_presence, kDetectedPresence, 0.03);
  EXPECT_LT(a.mean_presence, a.peak_presence);
}

TEST_F(ItineraryFixture, MinDurationDropsShortVisits) {
  ItineraryOptions options;
  options.step = 10.0;
  options.min_presence = 0.5;
  options.min_duration = 150.0;  // both visits span exactly 100s
  const Itinerary it = BuildItinerary(*engine_, 7, 0.0, 500.0, options);
  EXPECT_TRUE(it.visits.empty());
}

TEST_F(ItineraryFixture, PreTrackingRingsCoverDistantPois) {
  // Before the first detection only rd_suc constrains the object: the ring
  // around device 0 grows as t recedes and soon covers desk_b (10m away)
  // almost completely — the honest "could have been anywhere" answer.
  ItineraryOptions options;
  options.step = 10.0;
  options.min_presence = 0.9;
  const Itinerary it = BuildItinerary(*engine_, 7, 0.0, 90.0, options);
  ASSERT_EQ(it.visits.size(), 1u);
  EXPECT_EQ(it.visits[0].poi, 1);
  EXPECT_GT(it.visits[0].mean_presence, 0.9);
}

TEST_F(ItineraryFixture, UnknownObjectHasNoVisits) {
  const Itinerary it = BuildItinerary(*engine_, 999, 0.0, 500.0);
  EXPECT_EQ(it.object, 999);
  EXPECT_TRUE(it.visits.empty());
}

TEST_F(ItineraryFixture, WindowClipsSampling) {
  // Sampling only the gap between the two detections finds neither desk at
  // a high threshold.
  ItineraryOptions options;
  options.step = 5.0;
  options.min_presence = 0.5;
  const Itinerary it = BuildItinerary(*engine_, 7, 210.0, 290.0, options);
  EXPECT_TRUE(it.visits.empty());
}

TEST_F(ItineraryFixture, ObjectRegionAtMatchesDetectionState) {
  // Detected: the UR is (contained in) the device's range disk.
  const Region detected = engine_->ObjectRegionAt(7, 150.0);
  ASSERT_FALSE(detected.IsEmpty());
  const Box bounds = detected.Bounds();
  EXPECT_GE(bounds.min_x, 4.0 - 1e-9);
  EXPECT_LE(bounds.max_x, 6.0 + 1e-9);
  EXPECT_TRUE(detected.Contains({5.0, 8.0}));

  // Undetected between records: the region excludes both range disks'
  // centers but is nonempty.
  const Region gap = engine_->ObjectRegionAt(7, 250.0);
  ASSERT_FALSE(gap.IsEmpty());
  EXPECT_FALSE(gap.Contains({5.0, 8.0}));
  EXPECT_FALSE(gap.Contains({15.0, 8.0}));

  // Unknown object: empty.
  EXPECT_TRUE(engine_->ObjectRegionAt(999, 150.0).IsEmpty());
}

TEST_F(ItineraryFixture, ActiveObjectsFollowsAugmentedIntervals) {
  const auto during = engine_->ActiveObjects(150.0);
  ASSERT_EQ(during.size(), 1u);
  EXPECT_EQ(during[0], 7);
  // The gap is covered by the successor record's augmented interval.
  EXPECT_EQ(engine_->ActiveObjects(250.0).size(), 1u);
  // Long after the last record nothing is tracked.
  EXPECT_TRUE(engine_->ActiveObjects(10000.0).empty());
}

// Generated-dataset invariants: visits stay inside the window, presences
// stay in range, visits are ordered, and per-POI visits are separated by at
// least two sampling periods (one failing sample closes a visit).
class ItinerarySweep : public ::testing::TestWithParam<ObjectId> {
 protected:
  static void SetUpTestSuite() {
    OfficeDatasetConfig config;
    config.num_objects = 8;
    config.duration = 1200.0;
    config.seed = 99;
    dataset_ = new Dataset(GenerateOfficeDataset(config));
    engine_ = new QueryEngine(*dataset_, EngineConfig{});
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete dataset_;
    engine_ = nullptr;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
  static QueryEngine* engine_;
};

Dataset* ItinerarySweep::dataset_ = nullptr;
QueryEngine* ItinerarySweep::engine_ = nullptr;

TEST_P(ItinerarySweep, VisitInvariants) {
  ItineraryOptions options;
  options.step = 15.0;
  options.min_presence = 0.25;
  const Timestamp ts = 100.0, te = 1100.0;
  const Itinerary it = BuildItinerary(*engine_, GetParam(), ts, te, options);
  std::map<PoiId, Timestamp> last_end;
  Timestamp prev_start = -1.0;
  for (const ItineraryVisit& v : it.visits) {
    EXPECT_GE(v.start, ts);
    EXPECT_LE(v.end, te + options.step);
    EXPECT_LE(v.start, v.end);
    EXPECT_GE(v.mean_presence, options.min_presence);
    EXPECT_LE(v.peak_presence, 1.0 + 1e-9);
    EXPECT_GE(v.peak_presence, v.mean_presence - 1e-12);
    EXPECT_GE(v.start, prev_start);  // sorted by start
    prev_start = v.start;
    const auto it_prev = last_end.find(v.poi);
    if (it_prev != last_end.end()) {
      EXPECT_GE(v.start - it_prev->second, 2.0 * options.step - 1e-6)
          << "POI " << v.poi << " visits not separated";
    }
    last_end[v.poi] = v.end;
  }
}

INSTANTIATE_TEST_SUITE_P(Objects, ItinerarySweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace indoorflow
