// Randomized property tests over arbitrary Region CSG trees: containment
// must agree with the set semantics of the tree, the certified area
// integrator must agree with Monte-Carlo estimation, and bounds/emptiness
// must be conservative. These are the invariants every uncertainty region
// in the engine relies on, exercised far outside the shapes the queries
// happen to build.

#include <cmath>
#include <functional>
#include <numbers>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/geometry/area_integrator.h"
#include "src/geometry/extended_ellipse.h"
#include "src/geometry/region.h"

namespace indoorflow {
namespace {

constexpr double kDomain = 20.0;  // shapes live in [0, 20]^2

// A reference evaluator mirroring the CSG tree with plain lambdas, built
// alongside the Region so containment can be cross-checked independently.
struct SampleRegion {
  Region region;
  std::function<bool(Point)> contains;
};

// Reference containment for Θ(D_a, D_b, L) with include_disks semantics:
// the paper's *complete* region is the bridge {q : dist(q, D_a) +
// dist(q, D_b) <= L} (dist to a closed disk is 0 inside it) united with
// both detection disks — the disks belong to Θ even when L cannot bridge
// the gap between them.
bool ThetaContains(const Circle& a, const Circle& b, double travel,
                   Point p) {
  if (a.Contains(p) || b.Contains(p)) return true;
  const double da = Distance(p, a.center) - a.radius;
  const double db = Distance(p, b.center) - b.radius;
  return da + db <= travel;
}

SampleRegion RandomPrimitive(Rng& rng) {
  const Point c{rng.Uniform(2.0, kDomain - 2.0),
                rng.Uniform(2.0, kDomain - 2.0)};
  switch (rng.UniformInt(5ULL)) {
    case 0: {
      const Circle circle{c, rng.Uniform(0.5, 4.0)};
      return {Region::Make(circle),
              [circle](Point p) { return circle.Contains(p); }};
    }
    case 1: {
      const double inner = rng.Uniform(0.2, 2.0);
      const Ring ring{c, inner, inner + rng.Uniform(0.3, 3.0)};
      return {Region::Make(ring),
              [ring](Point p) { return ring.Contains(p); }};
    }
    case 2: {
      const double w = rng.Uniform(1.0, 6.0);
      const double h = rng.Uniform(1.0, 6.0);
      const Box box{c.x - w / 2.0, c.y - h / 2.0, c.x + w / 2.0,
                    c.y + h / 2.0};
      return {Region::Make(box), [box](Point p) { return box.Contains(p); }};
    }
    case 3: {
      // A triangle (simple convex polygon that is NOT a rectangle).
      const Point a{c.x - rng.Uniform(1.0, 3.0), c.y - rng.Uniform(1.0, 3.0)};
      const Point b{c.x + rng.Uniform(1.0, 3.0), c.y - rng.Uniform(0.5, 2.0)};
      const Point t{c.x, c.y + rng.Uniform(1.0, 3.0)};
      const Polygon tri({a, b, t});
      return {Region::Make(tri),
              [tri](Point p) { return tri.Contains(p); }};
    }
    default: {
      // An extended ellipse Θ(D_a, D_b, L) — the paper's bridge region —
      // with a second focus disk offset from the first and a travel budget
      // that sometimes bridges the gap and sometimes leaves only disks.
      const Circle a{c, rng.Uniform(0.5, 1.5)};
      const Point c2{c.x + rng.Uniform(-5.0, 5.0),
                     c.y + rng.Uniform(-5.0, 5.0)};
      const Circle b{c2, rng.Uniform(0.5, 1.5)};
      const double gap =
          std::max(0.0, Distance(a.center, b.center) - a.radius - b.radius);
      // Span the interesting regimes: L below the gap (disconnected
      // bridge), barely above, and comfortably above.
      const double travel = gap * rng.Uniform(0.3, 1.8) + 0.2;
      const ExtendedEllipse theta(a, b, travel);
      return {Region::Make(theta), [a, b, travel](Point p) {
                return ThetaContains(a, b, travel, p);
              }};
    }
  }
}

// Builds a random CSG tree with `ops` combining operations.
SampleRegion RandomTree(Rng& rng, int ops) {
  SampleRegion current = RandomPrimitive(rng);
  for (int i = 0; i < ops; ++i) {
    SampleRegion next = RandomPrimitive(rng);
    const auto lhs = current.contains;
    const auto rhs = next.contains;
    switch (rng.UniformInt(3ULL)) {
      case 0:
        current.region =
            Region::Intersect(std::move(current.region), std::move(next.region));
        current.contains = [lhs, rhs](Point p) { return lhs(p) && rhs(p); };
        break;
      case 1:
        current.region =
            Region::Union(std::move(current.region), std::move(next.region));
        current.contains = [lhs, rhs](Point p) { return lhs(p) || rhs(p); };
        break;
      default:
        current.region =
            Region::Subtract(std::move(current.region), std::move(next.region));
        current.contains = [lhs, rhs](Point p) { return lhs(p) && !rhs(p); };
        break;
    }
  }
  return current;
}

class RegionFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegionFuzz, ContainsMatchesSetSemantics) {
  Rng rng(GetParam());
  const SampleRegion sample = RandomTree(rng, 1 + static_cast<int>(
                                                    rng.UniformInt(4ULL)));
  ASSERT_TRUE(sample.region.CheckInvariants().ok())
      << sample.region.CheckInvariants().message();
  for (int i = 0; i < 2000; ++i) {
    const Point p{rng.Uniform(-1.0, kDomain + 1.0),
                  rng.Uniform(-1.0, kDomain + 1.0)};
    EXPECT_EQ(sample.region.Contains(p), sample.contains(p))
        << "p=(" << p.x << ", " << p.y << ")";
  }
}

TEST_P(RegionFuzz, BoundsContainTheRegion) {
  Rng rng(GetParam() ^ 0x5555555555555555ULL);
  const SampleRegion sample = RandomTree(rng, 2);
  ASSERT_TRUE(sample.region.CheckInvariants().ok())
      << sample.region.CheckInvariants().message();
  if (sample.region.IsEmpty()) return;  // nothing to check
  const Box bounds = sample.region.Bounds();
  for (int i = 0; i < 2000; ++i) {
    const Point p{rng.Uniform(-1.0, kDomain + 1.0),
                  rng.Uniform(-1.0, kDomain + 1.0)};
    if (sample.region.Contains(p)) {
      EXPECT_TRUE(bounds.Contains(p))
          << "point in region escapes Bounds(): (" << p.x << ", " << p.y
          << ")";
    }
  }
}

TEST_P(RegionFuzz, IntegratorAgreesWithMonteCarlo) {
  Rng rng(GetParam() ^ 0xaaaaaaaaaaaaaaaaULL);
  const SampleRegion sample = RandomTree(rng, 2);

  AreaOptions options;
  options.abs_tolerance = 0.02;
  options.max_depth = 14;
  options.max_cells = 200000;
  const AreaEstimate estimate = Area(sample.region, options);

  // Monte Carlo over the domain box: n samples give a standard error of
  // area_box * sqrt(p(1-p)/n); use 5 sigma plus the integrator's certified
  // bound as the comparison tolerance.
  const double box_area = (kDomain + 2.0) * (kDomain + 2.0);
  const int n = 60000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    const Point p{rng.Uniform(-1.0, kDomain + 1.0),
                  rng.Uniform(-1.0, kDomain + 1.0)};
    hits += sample.contains(p) ? 1 : 0;
  }
  const double mc_area = box_area * static_cast<double>(hits) / n;
  const double p_hat = static_cast<double>(hits) / n;
  const double sigma =
      box_area * std::sqrt(std::max(p_hat * (1.0 - p_hat), 1e-9) / n);
  EXPECT_NEAR(estimate.area, mc_area, 5.0 * sigma + estimate.error_bound)
      << "integrator=" << estimate.area << " mc=" << mc_area
      << " sigma=" << sigma << " certified=" << estimate.error_bound;
}

TEST_P(RegionFuzz, SelfIntersectionIsIdentityForArea) {
  Rng rng(GetParam() ^ 0x123456789ULL);
  const SampleRegion sample = RandomTree(rng, 1);
  AreaOptions options;
  options.abs_tolerance = 0.02;
  const AreaEstimate whole = Area(sample.region, options);
  const AreaEstimate self =
      AreaOfIntersection(sample.region, sample.region, options);
  EXPECT_NEAR(whole.area, self.area,
              whole.error_bound + self.error_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionFuzz,
                         ::testing::Range<uint64_t>(9000, 9012));

// Deterministic sanity anchors for the fuzz machinery itself.
TEST(RegionFuzzAnchors, KnownComposition) {
  // (disk r=2 at (5,5)) minus (box covering its right half): area = half
  // the disk.
  const Region disk = Region::Make(Circle{{5, 5}, 2.0});
  const Region right = Region::Make(Box{5.0, 0.0, 10.0, 10.0});
  const Region half = Region::Subtract(disk, right);
  AreaOptions options;
  options.abs_tolerance = 0.01;
  const AreaEstimate estimate = Area(half, options);
  EXPECT_NEAR(estimate.area, 2.0 * std::numbers::pi,
              0.01 + estimate.error_bound);
  EXPECT_TRUE(half.Contains({4.0, 5.0}));
  EXPECT_FALSE(half.Contains({6.0, 5.0}));
}

}  // namespace
}  // namespace indoorflow
