// Tests for the materialized flow matrix.

#include <gtest/gtest.h>

#include "src/core/flow_matrix.h"
#include "src/core/timeline.h"
#include "src/indoor/plan_builders.h"

namespace indoorflow {
namespace {

// Controlled occupancy: 2 objects in room_a during [0,100], 1 object in
// room_b during [150,250].
class FlowMatrixFixture : public ::testing::Test {
 protected:
  FlowMatrixFixture() : built_(BuildTinyPlan()), graph_(built_.plan) {
    deployment_.AddDevice(Circle{{5, 8}, 1.0});
    deployment_.AddDevice(Circle{{15, 8}, 1.0});
    deployment_.BuildIndex();
    pois_.push_back(Poi{0, "room_a", Polygon::Rectangle(0, 4, 10, 12)});
    pois_.push_back(Poi{1, "room_b", Polygon::Rectangle(10, 4, 20, 12)});
    table_.Append({0, 0, 0, 100});
    table_.Append({1, 0, 0, 100});
    table_.Append({2, 1, 150, 250});
    INDOORFLOW_CHECK(table_.Finalize().ok());
    EngineConfig config;
    config.vmax = 1.0;
    config.topology = TopologyMode::kOff;
    engine_ = std::make_unique<QueryEngine>(built_.plan, graph_,
                                            deployment_, table_, pois_,
                                            config);
  }

  BuiltPlan built_;
  DoorGraph graph_;
  Deployment deployment_;
  ObjectTrackingTable table_;
  PoiSet pois_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(FlowMatrixFixture, BuildShape) {
  FlowMatrixOptions options;
  options.bucket_seconds = 50.0;
  const FlowMatrix matrix =
      FlowMatrix::Build(*engine_, 0.0, 300.0, options);
  EXPECT_EQ(matrix.num_buckets(), 6u);
  EXPECT_EQ(matrix.num_pois(), 2u);
  EXPECT_DOUBLE_EQ(matrix.bucket_time(0), 25.0);
  EXPECT_DOUBLE_EQ(matrix.bucket_time(5), 275.0);
}

TEST_F(FlowMatrixFixture, MatchesExactQueriesAtBucketCenters) {
  FlowMatrixOptions options;
  options.bucket_seconds = 50.0;
  const FlowMatrix matrix =
      FlowMatrix::Build(*engine_, 0.0, 300.0, options);
  for (size_t bucket = 0; bucket < matrix.num_buckets(); ++bucket) {
    const auto exact = engine_->SnapshotTopK(matrix.bucket_time(bucket), 2,
                                             Algorithm::kJoin);
    for (const PoiFlow& f : exact) {
      EXPECT_NEAR(matrix.FlowAt(bucket, f.poi), f.flow, 1e-12)
          << "bucket " << bucket << " poi " << f.poi;
    }
  }
}

TEST_F(FlowMatrixFixture, ApproxTopKTracksOccupancy) {
  FlowMatrixOptions options;
  options.bucket_seconds = 25.0;
  const FlowMatrix matrix =
      FlowMatrix::Build(*engine_, 0.0, 300.0, options);
  // During [0,100]: room_a leads; during [150,250]: room_b leads.
  const auto early = matrix.ApproxSnapshotTopK(50.0, 1);
  ASSERT_EQ(early.size(), 1u);
  EXPECT_EQ(early[0].poi, 0);
  EXPECT_GT(early[0].flow, 0.0);
  const auto late = matrix.ApproxSnapshotTopK(200.0, 1);
  EXPECT_EQ(late[0].poi, 1);
}

TEST_F(FlowMatrixFixture, InterpolationIsClampedAndContinuous) {
  FlowMatrixOptions options;
  options.bucket_seconds = 100.0;
  const FlowMatrix matrix =
      FlowMatrix::Build(*engine_, 0.0, 300.0, options);
  // Beyond the grid: clamped to the edge buckets.
  EXPECT_DOUBLE_EQ(matrix.ApproxFlow(0, -100.0), matrix.FlowAt(0, 0));
  EXPECT_DOUBLE_EQ(matrix.ApproxFlow(0, 1000.0),
                   matrix.FlowAt(matrix.num_buckets() - 1, 0));
  // Midpoint between buckets = average of the two bucket values.
  const double mid =
      (matrix.bucket_time(0) + matrix.bucket_time(1)) / 2.0;
  EXPECT_NEAR(matrix.ApproxFlow(0, mid),
              0.5 * (matrix.FlowAt(0, 0) + matrix.FlowAt(1, 0)), 1e-12);
}

TEST_F(FlowMatrixFixture, AverageOccupancyAgreesWithTimeline) {
  FlowMatrixOptions options;
  options.bucket_seconds = 20.0;
  const FlowMatrix matrix =
      FlowMatrix::Build(*engine_, 0.0, 300.0, options);
  const auto ranked = matrix.AverageOccupancyTopK(0.0, 300.0, 2);
  ASSERT_EQ(ranked.size(), 2u);
  // room_a hosts 2 objects for 1/3 of the window; room_b 1 object for 1/3:
  // room_a's average occupancy is ~2x room_b's.
  EXPECT_EQ(ranked[0].poi, 0);
  EXPECT_NEAR(ranked[0].flow / ranked[1].flow, 2.0, 0.35);
  // Cross-check against the exact timeline average.
  const auto series = FlowTimeline(*engine_, 0, 0.0, 300.0, 20.0);
  EXPECT_NEAR(ranked[0].flow, AverageFlow(series), 0.05);
}

TEST_F(FlowMatrixFixture, DegenerateWindows) {
  FlowMatrixOptions options;
  options.bucket_seconds = 50.0;
  const FlowMatrix matrix = FlowMatrix::Build(*engine_, 0.0, 0.0, options);
  EXPECT_EQ(matrix.num_buckets(), 1u);
  const auto top = matrix.AverageOccupancyTopK(10.0, 10.0, 2);
  EXPECT_EQ(top.size(), 2u);
}

}  // namespace
}  // namespace indoorflow
