// Tests for the observability layer (src/common/metrics.h): counter and
// gauge semantics, log-scale histogram percentile accuracy, registry JSON
// and text dumps, duplicate-kind registration death, the Chrome trace sink,
// and a concurrent-increment stress suite that runs under the TSan CI job
// (suite name matches its -R "Concurrency|..." test filter).

#include "src/common/metrics.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace indoorflow {
namespace {

// --- Minimal JSON reader (objects, numbers, strings) ------------------------
// Enough to round-trip DumpJson() without a third-party dependency. Fails
// the test on malformed input.

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  /// Parses the full document; returns false on trailing garbage or error.
  bool Parse() {
    pos_ = 0;
    const bool ok = ParseValue();
    SkipSpace();
    return ok && pos_ == text_.size();
  }

  /// Looks up a number by dotted path into nested objects, e.g.
  /// "histograms.query.snapshot.latency_us.p50" will not work because keys
  /// themselves contain dots; instead keys are matched greedily section by
  /// section via explicit segments.
  bool Number(const std::vector<std::string>& path, double* out) const {
    std::string key;
    for (const std::string& part : path) {
      if (!key.empty()) key += '\x1f';
      key += part;
    }
    auto it = numbers_.find(key);
    if (it == numbers_.end()) return false;
    *out = it->second;
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      if (pos_ < text_.size()) out->push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    // Number.
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) != 0 ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    numbers_[JoinedPath()] = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (pos_ < text_.size()) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      path_.push_back(key);
      const bool ok = ParseValue();
      path_.pop_back();
      if (!ok) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
    return false;
  }

  std::string JoinedPath() const {
    std::string key;
    for (const std::string& part : path_) {
      if (!key.empty()) key += '\x1f';
      key += part;
    }
    return key;
  }

  std::string text_;
  size_t pos_ = 0;
  std::vector<std::string> path_;
  std::map<std::string, double> numbers_;
};

// --- Counter / Gauge --------------------------------------------------------

TEST(MetricsTest, CounterStartsAtZeroAndAdds) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Add(-2);
  EXPECT_EQ(counter.value(), 40);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.Add(1.25);
  EXPECT_EQ(gauge.value(), 3.75);
  gauge.Add(-3.75);
  EXPECT_EQ(gauge.value(), 0.0);
}

// --- Histogram --------------------------------------------------------------

TEST(MetricsTest, HistogramEmpty) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.sum(), 0.0);
  EXPECT_EQ(hist.min(), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
  EXPECT_EQ(hist.Percentile(50.0), 0.0);
}

TEST(MetricsTest, HistogramSingleSample) {
  Histogram hist;
  hist.Record(3.5);
  EXPECT_EQ(hist.count(), 1);
  EXPECT_EQ(hist.min(), 3.5);
  EXPECT_EQ(hist.max(), 3.5);
  // A single sample is every percentile; the min/max envelope makes the
  // answer exact despite bucketing.
  EXPECT_EQ(hist.Percentile(0.0), 3.5);
  EXPECT_EQ(hist.Percentile(50.0), 3.5);
  EXPECT_EQ(hist.Percentile(100.0), 3.5);
}

TEST(MetricsTest, HistogramBucketIndexRoundTrip) {
  // BucketLowerBound(BucketIndex(v)) <= v < BucketLowerBound(index + 1),
  // across the full dynamic range.
  for (double value : {0.001, 0.01, 0.5, 1.0, 1.0625, 3.14159, 100.0,
                       12345.678, 9.5e9}) {
    const int index = Histogram::BucketIndex(value);
    ASSERT_GE(index, 0) << value;
    ASSERT_LT(index, Histogram::kNumBuckets) << value;
    EXPECT_LE(Histogram::BucketLowerBound(index), value * (1 + 1e-12))
        << value;
    if (index + 1 < Histogram::kNumBuckets) {
      EXPECT_GT(Histogram::BucketLowerBound(index + 1), value * (1 - 1e-12))
          << value;
    }
  }
}

TEST(MetricsTest, HistogramPercentilesKnownDistribution) {
  // 1..1000 uniformly: p50 ~ 500, p90 ~ 900, p99 ~ 990. The log-scale
  // buckets guarantee relative error <= 1/kSubBuckets per sample, plus one
  // bucket of rank slack at the boundaries.
  Histogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(static_cast<double>(i));
  EXPECT_EQ(hist.count(), 1000);
  EXPECT_EQ(hist.min(), 1.0);
  EXPECT_EQ(hist.max(), 1000.0);
  EXPECT_NEAR(hist.sum(), 500500.0, 1e-6);
  const double kRelTol = 1.0 / Histogram::kSubBuckets;
  EXPECT_NEAR(hist.Percentile(50.0), 500.0, 500.0 * kRelTol);
  EXPECT_NEAR(hist.Percentile(90.0), 900.0, 900.0 * kRelTol);
  EXPECT_NEAR(hist.Percentile(99.0), 990.0, 990.0 * kRelTol);
  EXPECT_EQ(hist.Percentile(0.0), 1.0);
  EXPECT_EQ(hist.Percentile(100.0), 1000.0);
  // Percentiles are monotone in q.
  double prev = 0.0;
  for (double q : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    const double value = hist.Percentile(q);
    EXPECT_GE(value, prev) << "q=" << q;
    prev = value;
  }
}

TEST(MetricsTest, HistogramTinyAndHugeValues) {
  Histogram hist;
  hist.Record(1e-12);  // below kMinExponent: clamps to bucket 0
  hist.Record(1e18);   // above the top octave: clamps to the last bucket
  EXPECT_EQ(hist.count(), 2);
  EXPECT_EQ(hist.min(), 1e-12);
  EXPECT_EQ(hist.max(), 1e18);
  // The envelope keeps even clamped extremes exact at the ends.
  EXPECT_EQ(hist.Percentile(0.0), 1e-12);
  EXPECT_EQ(hist.Percentile(100.0), 1e18);
}

TEST(MetricsTest, HistogramIgnoresNonPositiveAndNonFinite) {
  Histogram hist;
  hist.Record(0.0);
  hist.Record(-5.0);
  hist.Record(std::nan(""));
  hist.Record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(hist.count(), 0);
}

// --- Registry ---------------------------------------------------------------

TEST(MetricsTest, RegistryReturnsSameInstanceForSameName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.counter");
  Counter& b = registry.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3);
  Histogram& h1 = registry.histogram("test.hist");
  Histogram& h2 = registry.histogram("test.hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsDeathTest, DuplicateNameDifferentKindAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry registry;
  registry.counter("test.dup");
  EXPECT_DEATH(registry.histogram("test.dup"),
               "already registered as a different kind");
  EXPECT_DEATH(registry.gauge("test.dup"),
               "already registered as a different kind");
}

TEST(MetricsTest, DumpJsonRoundTrips) {
  MetricsRegistry registry;
  registry.counter("alpha.count").Add(7);
  registry.gauge("beta.size").Set(12.5);
  Histogram& hist = registry.histogram("gamma.latency_us");
  for (int i = 1; i <= 100; ++i) hist.Record(static_cast<double>(i));

  const std::string json = registry.DumpJson();
  JsonReader reader(json);
  ASSERT_TRUE(reader.Parse()) << json;

  double value = 0.0;
  ASSERT_TRUE(reader.Number({"counters", "alpha.count"}, &value)) << json;
  EXPECT_EQ(value, 7.0);
  ASSERT_TRUE(reader.Number({"gauges", "beta.size"}, &value)) << json;
  EXPECT_EQ(value, 12.5);
  ASSERT_TRUE(
      reader.Number({"histograms", "gamma.latency_us", "count"}, &value));
  EXPECT_EQ(value, 100.0);
  ASSERT_TRUE(
      reader.Number({"histograms", "gamma.latency_us", "p50"}, &value));
  EXPECT_NEAR(value, 50.0, 50.0 / Histogram::kSubBuckets);
  ASSERT_TRUE(reader.Number({"histograms", "gamma.latency_us", "max"},
                            &value));
  EXPECT_EQ(value, 100.0);
}

TEST(MetricsTest, DumpJsonEmptyRegistryIsValid) {
  MetricsRegistry registry;
  JsonReader reader(registry.DumpJson());
  EXPECT_TRUE(reader.Parse());
}

TEST(MetricsTest, DumpTextHasPrometheusShape) {
  MetricsRegistry registry;
  registry.counter("alpha.count").Add(2);
  registry.histogram("gamma.latency_us").Record(5.0);
  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("# TYPE indoorflow_alpha_count counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("indoorflow_alpha_count 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE indoorflow_gamma_latency_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("indoorflow_gamma_latency_us_count 1"),
            std::string::npos);
}

// --- ScopedTimer ------------------------------------------------------------

TEST(MetricsTest, ScopedTimerRecordsIntoHistogram) {
  Histogram hist;
  {
    ScopedTimer timer(&hist);
    // Do a sliver of work so elapsed > 0 even at coarse clock resolution.
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink += std::sqrt(static_cast<double>(i));
    EXPECT_GE(timer.ElapsedNs(), 0);
  }
  EXPECT_EQ(hist.count(), 1);
  EXPECT_GT(hist.max(), 0.0);
}

TEST(MetricsTest, MonotonicNowAdvances) {
  const int64_t a = MonotonicNowNs();
  const int64_t b = MonotonicNowNs();
  EXPECT_GE(b, a);
}

// --- Trace sink -------------------------------------------------------------

TEST(MetricsTest, TraceSinkWritesParsableJsonArray) {
  const std::string path =
      ::testing::TempDir() + "/indoorflow_trace_test.json";
  ASSERT_TRUE(StartTracing(path).ok());
  EXPECT_TRUE(TracingEnabled());
  // Starting twice while active must fail, not clobber the stream.
  EXPECT_FALSE(StartTracing(path).ok());
  EmitTraceEvent("unit_test_span", /*start_us=*/10, /*dur_us=*/5);
  {
    Histogram hist;
    ScopedTimer timer(&hist, "unit_test_scoped");
  }
  StopTracing();
  EXPECT_FALSE(TracingEnabled());

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string content;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  EXPECT_EQ(content.front(), '[');
  EXPECT_EQ(content.back(), '\n');
  EXPECT_NE(content.find("\"unit_test_span\""), std::string::npos) << content;
  EXPECT_NE(content.find("\"unit_test_scoped\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
  // Exactly two events => exactly one separating comma at depth 1.
  EXPECT_NE(content.find("},\n"), std::string::npos);
}

TEST(MetricsTest, TraceSinkNestedSpansAreWellFormedAndOrdered) {
  // The INDOORFLOW_TRACE env path drives the sink exactly like the tools
  // do; nested ScopedTimers must produce one well-formed event per line,
  // emitted innermost-first (destruction order) with properly nested
  // timestamps.
  const std::string path =
      ::testing::TempDir() + "/indoorflow_trace_nested.json";
  ASSERT_EQ(setenv("INDOORFLOW_TRACE", path.c_str(), 1), 0);
  ASSERT_TRUE(InitTracingFromEnv());
  ASSERT_TRUE(TracingEnabled());
  {
    ScopedTimer outer(nullptr, "nest_outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      ScopedTimer middle(nullptr, "nest_middle");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      {
        ScopedTimer inner(nullptr, "nest_inner");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  StopTracing();
  unsetenv("INDOORFLOW_TRACE");

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string content;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);
  std::remove(path.c_str());

  // Collect the event lines between the array brackets; each must parse as
  // a standalone JSON object once the separating comma is stripped.
  std::vector<std::string> events;
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    std::string line = content.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line == "[" || line == "]") continue;
    if (line.back() == ',') line.pop_back();
    events.push_back(line);
  }
  ASSERT_EQ(events.size(), 3u) << content;

  const char* expected_names[] = {"nest_inner", "nest_middle", "nest_outer"};
  std::vector<double> ts(3), dur(3);
  for (size_t i = 0; i < events.size(); ++i) {
    JsonReader reader(events[i]);
    ASSERT_TRUE(reader.Parse()) << events[i];
    EXPECT_NE(events[i].find(std::string("\"name\":\"") +
                             expected_names[i] + "\""),
              std::string::npos)
        << events[i];
    ASSERT_TRUE(reader.Number({"ts"}, &ts[i])) << events[i];
    ASSERT_TRUE(reader.Number({"dur"}, &dur[i])) << events[i];
    EXPECT_GT(dur[i], 0.0) << events[i];
  }
  // Starts: outer before middle before inner; durations nest the same way.
  EXPECT_LT(ts[2], ts[1]);
  EXPECT_LT(ts[1], ts[0]);
  EXPECT_GT(dur[2], dur[1]);
  EXPECT_GT(dur[1], dur[0]);
  // Each span ends inside its parent — equivalently, the file order is the
  // completion order (2us slack for independent microsecond truncation of
  // ts and dur).
  EXPECT_LE(ts[0] + dur[0], ts[1] + dur[1] + 2.0);
  EXPECT_LE(ts[1] + dur[1], ts[2] + dur[2] + 2.0);
}

TEST(MetricsTest, StartTracingRejectsUnwritablePath) {
  EXPECT_FALSE(StartTracing("/nonexistent-dir/trace.json").ok());
  EXPECT_FALSE(TracingEnabled());
}

TEST(MetricsTest, EmitWithoutTracingIsNoOp) {
  EXPECT_FALSE(TracingEnabled());
  EmitTraceEvent("ignored", 0, 1);  // must not crash
}

// --- Concurrency stress (runs under the TSan CI job) ------------------------

TEST(MetricsConcurrencyTest, CountersUnderContention) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), int64_t{kThreads} * kPerThread);
}

TEST(MetricsConcurrencyTest, HistogramUnderContention) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 1; i <= kPerThread; ++i) {
        hist.Record(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(hist.min(), 1.0);
  EXPECT_EQ(hist.max(), static_cast<double>(kThreads * kPerThread));
  const double expected_sum =
      static_cast<double>(kThreads) * kPerThread *
      (static_cast<double>(kThreads) * kPerThread + 1) / 2.0;
  EXPECT_NEAR(hist.sum(), expected_sum, expected_sum * 1e-9);
}

TEST(MetricsConcurrencyTest, GaugeAddUnderContention) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(MetricsConcurrencyTest, RegistryRegistrationUnderContention) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter& counter = registry.counter("stress.shared");
      counter.Add(1);
      seen[static_cast<size_t>(t)] = &counter;
      // Also churn thread-unique names to stress map growth.
      registry.histogram("stress.hist." + std::to_string(t)).Record(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(registry.counter("stress.shared").value(), kThreads);
}

TEST(MetricsConcurrencyTest, DumpWhileRecording) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("stress.dump");
  std::atomic<bool> stop{false};
  std::thread writer([&hist, &stop] {
    int i = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      hist.Record(static_cast<double>(i % 1000 + 1));
      ++i;
    }
  });
  for (int i = 0; i < 50; ++i) {
    const std::string json = registry.DumpJson();
    EXPECT_FALSE(json.empty());
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  JsonReader reader(registry.DumpJson());
  EXPECT_TRUE(reader.Parse());
}

}  // namespace
}  // namespace indoorflow
