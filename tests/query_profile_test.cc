// Tests for the EXPLAIN query profile (src/core/query_profile.h): the
// verdict-partition invariant across query types and algorithms, QueryStats
// and phase-time reconciliation, JSON/text rendering, the flight recorder's
// keep-the-slowest retention policy, and a concurrent profiling stress
// suite that runs under the TSan CI job (suite name matches its
// -R "Concurrency|..." test filter).

#include "src/core/query_profile.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"

namespace indoorflow {
namespace {

const Dataset& TestData() {
  static const Dataset* data = [] {
    OfficeDatasetConfig config;
    config.num_objects = 60;
    config.duration = 600.0;
    config.num_pois = 12;
    config.seed = 7;
    return new Dataset(GenerateOfficeDataset(config));
  }();
  return *data;
}

const QueryEngine& TestEngine() {
  static const QueryEngine* engine =
      new QueryEngine(TestData(), EngineConfig{});
  return *engine;
}

Timestamp MidTime() {
  const Dataset& data = TestData();
  return (data.window_start + data.window_end) / 2.0;
}

void ExpectPartition(const QueryProfile& profile, size_t poi_count) {
  EXPECT_EQ(profile.pois.size(), poi_count);
  const int64_t evaluated =
      profile.CountVerdict(QueryProfile::Verdict::kEvaluated);
  const int64_t pruned_bound =
      profile.CountVerdict(QueryProfile::Verdict::kPrunedBound);
  const int64_t pruned_mbr =
      profile.CountVerdict(QueryProfile::Verdict::kPrunedMbr);
  EXPECT_EQ(evaluated + pruned_bound + pruned_mbr,
            static_cast<int64_t>(poi_count))
      << profile.kind << "/" << profile.algorithm;
}

// --- Verdict partition across every query type x algorithm ------------------

TEST(QueryProfileTest, VerdictsPartitionPoiSetAcrossQueryTypes) {
  const QueryEngine& engine = TestEngine();
  const size_t pois = TestData().pois.size();
  const Timestamp t = MidTime();
  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    {
      QueryProfile profile;
      engine.SnapshotTopK(t, 3, algo, nullptr, nullptr, &profile);
      EXPECT_EQ(profile.kind, "SnapshotTopK");
      EXPECT_EQ(profile.algorithm,
                algo == Algorithm::kJoin ? "join" : "iterative");
      EXPECT_EQ(profile.ts, t);
      EXPECT_EQ(profile.te, t);
      EXPECT_EQ(profile.k, 3);
      EXPECT_GT(profile.total_ns, 0);
      ExpectPartition(profile, pois);
    }
    {
      QueryProfile profile;
      engine.IntervalTopK(t - 60.0, t + 60.0, 3, algo, nullptr, nullptr,
                          &profile);
      EXPECT_EQ(profile.kind, "IntervalTopK");
      EXPECT_EQ(profile.ts, t - 60.0);
      EXPECT_EQ(profile.te, t + 60.0);
      ExpectPartition(profile, pois);
    }
    {
      QueryProfile profile;
      engine.SnapshotThreshold(t, 1.0, algo, nullptr, nullptr, &profile);
      EXPECT_EQ(profile.kind, "SnapshotThreshold");
      EXPECT_EQ(profile.tau, 1.0);
      EXPECT_EQ(profile.k, 0);
      ExpectPartition(profile, pois);
    }
    {
      QueryProfile profile;
      engine.IntervalThreshold(t - 60.0, t + 60.0, 1.0, algo, nullptr,
                               nullptr, &profile);
      EXPECT_EQ(profile.kind, "IntervalThreshold");
      ExpectPartition(profile, pois);
    }
    {
      QueryProfile profile;
      engine.SnapshotDensityTopK(t, 3, algo, nullptr, nullptr, &profile);
      EXPECT_EQ(profile.kind, "SnapshotDensityTopK");
      ExpectPartition(profile, pois);
    }
    {
      QueryProfile profile;
      engine.IntervalDensityTopK(t - 60.0, t + 60.0, 3, algo, nullptr,
                                 nullptr, &profile);
      EXPECT_EQ(profile.kind, "IntervalDensityTopK");
      ExpectPartition(profile, pois);
    }
  }
}

TEST(QueryProfileTest, SubsetQueriesPartitionTheSubset) {
  const QueryEngine& engine = TestEngine();
  const std::vector<PoiId> subset = {0, 2, 5};
  QueryProfile profile;
  engine.SnapshotTopK(MidTime(), 2, Algorithm::kJoin, &subset, nullptr,
                      &profile);
  ExpectPartition(profile, subset.size());
  for (const QueryProfile::PoiEntry& entry : profile.pois) {
    EXPECT_NE(std::find(subset.begin(), subset.end(), entry.poi),
              subset.end());
  }
}

// --- Reconciliation with QueryStats and the query results -------------------

TEST(QueryProfileTest, ProfileStatsMatchQueryStatsAndResultsUnchanged) {
  const QueryEngine& engine = TestEngine();
  const Timestamp t = MidTime();
  const auto plain = engine.SnapshotTopK(t, 5, Algorithm::kJoin);
  QueryStats stats;
  QueryProfile profile;
  const auto profiled =
      engine.SnapshotTopK(t, 5, Algorithm::kJoin, nullptr, &stats, &profile);
  ASSERT_EQ(profiled.size(), plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(profiled[i].poi, plain[i].poi);
    EXPECT_DOUBLE_EQ(profiled[i].flow, plain[i].flow);
  }
  // The profile's stats are the scope's own deltas, so a zero-initialized
  // caller QueryStats must agree field by field.
  for (const QueryStatsField& field : kQueryStatsFields) {
    EXPECT_EQ(profile.stats.*field.member, stats.*field.member)
        << field.json_name;
  }
  // Phase times reconcile with the wall total.
  const int64_t phase_sum = profile.stats.retrieve_ns +
                            profile.stats.derive_ns +
                            profile.stats.presence_ns + profile.stats.topk_ns;
  EXPECT_GT(phase_sum, 0);
  EXPECT_LE(phase_sum, profile.total_ns);
}

TEST(QueryProfileTest, EvaluatedFlowsMatchReturnedFlows) {
  const QueryEngine& engine = TestEngine();
  const int k = static_cast<int>(TestData().pois.size());
  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    QueryProfile profile;
    const auto top =
        engine.SnapshotTopK(MidTime(), k, algo, nullptr, nullptr, &profile);
    for (const PoiFlow& result : top) {
      if (result.flow <= 0.0) continue;
      const auto it = std::find_if(
          profile.pois.begin(), profile.pois.end(),
          [&result](const QueryProfile::PoiEntry& entry) {
            return entry.poi == result.poi;
          });
      ASSERT_NE(it, profile.pois.end());
      EXPECT_EQ(it->verdict, QueryProfile::Verdict::kEvaluated);
      EXPECT_NEAR(it->flow, result.flow, 1e-9 + result.flow * 1e-12);
    }
  }
}

// --- Rendering --------------------------------------------------------------

TEST(QueryProfileTest, ToJsonHasExpectedShape) {
  const QueryEngine& engine = TestEngine();
  QueryProfile profile;
  engine.SnapshotTopK(MidTime(), 3, Algorithm::kJoin, nullptr, nullptr,
                      &profile);
  const std::string json = profile.ToJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  for (const char* key :
       {"\"kind\"", "\"algorithm\"", "\"params\"", "\"total_ns\"",
        "\"stats\"", "\"verdicts\"", "\"pois\"", "\"object_costs\"",
        "\"join_trace\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(QueryProfileTest, ToTextMentionsPhasesAndFunnel) {
  const QueryEngine& engine = TestEngine();
  QueryProfile profile;
  engine.SnapshotTopK(MidTime(), 3, Algorithm::kJoin, nullptr, nullptr,
                      &profile);
  const std::string text = profile.ToText();
  for (const char* needle :
       {"query:", "phases:", "pois:", "evaluated", "pruned_bound",
        "pruned_mbr", "work:"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(QueryProfileTest, SummaryModeSkipsDetailButKeepsVerdicts) {
  const QueryEngine& engine = TestEngine();
  QueryProfile profile;
  profile.detail = false;
  engine.SnapshotTopK(MidTime(), 3, Algorithm::kJoin, nullptr, nullptr,
                      &profile);
  EXPECT_TRUE(profile.object_costs.empty());
  EXPECT_TRUE(profile.join_events.empty());
  ExpectPartition(profile, TestData().pois.size());
  EXPECT_NE(profile.ToJson().find("\"detail\":false"), std::string::npos);
}

// --- Flight recorder --------------------------------------------------------

QueryProfile ProfileWithTotal(int64_t total_ns) {
  QueryProfile profile;
  profile.kind = "Synthetic";
  profile.total_ns = total_ns;
  return profile;
}

TEST(QueryProfileTest, RecorderKeepsSlowestWithinCapacity) {
  ProfileRecorder recorder(/*capacity=*/2, /*window=*/1024);
  for (const int64_t total : {10, 40, 20, 30}) {
    recorder.Record(ProfileWithTotal(total));
  }
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.recorded(), 4);
  const std::string json = recorder.ToJson();
  // Slowest-first: 40 then 30; 10 and 20 were displaced.
  const size_t pos40 = json.find("\"total_ns\":40");
  const size_t pos30 = json.find("\"total_ns\":30");
  EXPECT_NE(pos40, std::string::npos) << json;
  EXPECT_NE(pos30, std::string::npos) << json;
  EXPECT_LT(pos40, pos30);
  EXPECT_EQ(json.find("\"total_ns\":10"), std::string::npos);
  EXPECT_EQ(json.find("\"total_ns\":20"), std::string::npos);
}

TEST(QueryProfileTest, RecorderWindowAgesOutOldProfiles) {
  // A burst of slow queries must not pin the buffer once `window` newer
  // queries have been recorded.
  ProfileRecorder recorder(/*capacity=*/4, /*window=*/3);
  recorder.Record(ProfileWithTotal(1000000));
  recorder.Record(ProfileWithTotal(1000000));
  for (int i = 0; i < 4; ++i) recorder.Record(ProfileWithTotal(1 + i));
  const std::string json = recorder.ToJson();
  EXPECT_EQ(json.find("\"total_ns\":1000000"), std::string::npos) << json;
  EXPECT_EQ(recorder.recorded(), 6);
}

TEST(QueryProfileTest, EngineRecordsSummaryProfilesWhenAttached) {
  QueryEngine engine(TestData(), EngineConfig{});
  ProfileRecorder recorder;
  engine.AttachProfileRecorder(&recorder);
  engine.SnapshotTopK(MidTime(), 3, Algorithm::kJoin);
  EXPECT_EQ(recorder.recorded(), 1);
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"kind\":\"SnapshotTopK\""), std::string::npos)
      << json;
  // Ambient profiles are summaries: no per-object costs or join trace.
  EXPECT_NE(json.find("\"detail\":false"), std::string::npos) << json;
  // A caller-provided (detailed) profile is recorded too.
  QueryProfile profile;
  engine.IntervalTopK(MidTime() - 30.0, MidTime() + 30.0, 3,
                      Algorithm::kIterative, nullptr, nullptr, &profile);
  EXPECT_EQ(recorder.recorded(), 2);
  engine.AttachProfileRecorder(nullptr);
  engine.SnapshotTopK(MidTime(), 3, Algorithm::kJoin);
  EXPECT_EQ(recorder.recorded(), 2);
}

// --- Concurrency stress (runs under the TSan CI job) ------------------------

TEST(QueryProfileConcurrencyTest, ParallelProfiledQueriesIntoOneRecorder) {
  QueryEngine engine(TestData(), EngineConfig{});
  ProfileRecorder recorder(/*capacity=*/8, /*window=*/64);
  engine.AttachProfileRecorder(&recorder);
  const size_t pois = TestData().pois.size();
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, pois, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        QueryProfile profile;
        const Timestamp when = MidTime() + 10.0 * t + i;
        if (i % 2 == 0) {
          engine.SnapshotTopK(when, 3, Algorithm::kJoin, nullptr, nullptr,
                              &profile);
        } else {
          engine.IntervalTopK(when - 30.0, when + 30.0, 3,
                              Algorithm::kIterative, nullptr, nullptr,
                              &profile);
        }
        ExpectPartition(profile, pois);
      }
    });
  }
  // Read the recorder while the queries hammer it.
  std::thread reader([&recorder] {
    for (int i = 0; i < 20; ++i) {
      const std::string json = recorder.ToJson();
      EXPECT_FALSE(json.empty());
    }
  });
  for (std::thread& thread : threads) thread.join();
  reader.join();
  EXPECT_EQ(recorder.recorded(),
            int64_t{kThreads} * kQueriesPerThread);
}

TEST(QueryProfileConcurrencyTest, BatchQueriesRecordFromWorkerThreads) {
  QueryEngine engine(TestData(), EngineConfig{});
  ProfileRecorder recorder(/*capacity=*/4, /*window=*/128);
  engine.AttachProfileRecorder(&recorder);
  std::vector<Timestamp> times;
  for (int i = 0; i < 24; ++i) times.push_back(MidTime() - 60.0 + 5.0 * i);
  const auto results =
      engine.SnapshotTopKBatch(times, 3, Algorithm::kJoin, nullptr,
                               /*threads=*/4);
  EXPECT_EQ(results.size(), times.size());
  EXPECT_EQ(recorder.recorded(), static_cast<int64_t>(times.size()));
  EXPECT_LE(recorder.size(), 4u);
}

}  // namespace
}  // namespace indoorflow
