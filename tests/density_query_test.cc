// Tests for the density top-k queries (SnapshotDensityTopK /
// IntervalDensityTopK): definition (flow / area), algorithm parity, the
// ranking inversion that distinguishes density from flow, and bound
// validity in the join.

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/indoor/plan_builders.h"

namespace indoorflow {
namespace {

class DensityFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    OfficeDatasetConfig config;
    config.num_objects = 40;
    config.duration = 1200.0;
    config.seed = 808;
    dataset_ = new Dataset(GenerateOfficeDataset(config));
    EngineConfig engine_config;
    engine_config.topology = TopologyMode::kOff;
    engine_ = new QueryEngine(*dataset_, engine_config);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete dataset_;
    engine_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static QueryEngine* engine_;
};

Dataset* DensityFixture::dataset_ = nullptr;
QueryEngine* DensityFixture::engine_ = nullptr;

TEST_F(DensityFixture, DensityIsFlowOverArea) {
  const Timestamp t = 600.0;
  const auto flows =
      engine_->SnapshotTopK(t, 1 << 20, Algorithm::kIterative);
  std::map<PoiId, double> flow_of;
  for (const PoiFlow& f : flows) flow_of[f.poi] = f.flow;
  const auto densities =
      engine_->SnapshotDensityTopK(t, 1 << 20, Algorithm::kIterative);
  ASSERT_EQ(densities.size(), flows.size());
  for (const PoiFlow& d : densities) {
    const double area =
        dataset_->pois[static_cast<size_t>(d.poi)].Area();
    ASSERT_GT(area, 0.0);
    EXPECT_NEAR(d.flow, flow_of.at(d.poi) / area, 1e-12) << "POI " << d.poi;
  }
}

TEST_F(DensityFixture, SnapshotAlgorithmsAgree) {
  for (Timestamp t : {300.0, 600.0, 900.0}) {
    for (int k : {1, 5, 20}) {
      const auto iter =
          engine_->SnapshotDensityTopK(t, k, Algorithm::kIterative);
      const auto join = engine_->SnapshotDensityTopK(t, k, Algorithm::kJoin);
      ASSERT_EQ(iter.size(), join.size()) << "t=" << t << " k=" << k;
      for (size_t i = 0; i < iter.size(); ++i) {
        EXPECT_EQ(iter[i].poi, join[i].poi)
            << "t=" << t << " k=" << k << " rank " << i;
        EXPECT_NEAR(iter[i].flow, join[i].flow, 1e-9);
      }
    }
  }
}

TEST_F(DensityFixture, IntervalAlgorithmsAgreeAsSets) {
  // Interval flows saturate into exact ties; densities break most ties via
  // distinct areas, but compare as sets with per-POI values to stay robust.
  const Timestamp ts = 400.0, te = 800.0;
  const int k = 10;
  const auto iter =
      engine_->IntervalDensityTopK(ts, te, k, Algorithm::kIterative);
  const auto join = engine_->IntervalDensityTopK(ts, te, k, Algorithm::kJoin);
  ASSERT_EQ(iter.size(), join.size());
  std::map<PoiId, double> join_of;
  for (const PoiFlow& f : join) join_of[f.poi] = f.flow;
  for (const PoiFlow& f : iter) {
    ASSERT_TRUE(join_of.contains(f.poi)) << "POI " << f.poi;
    EXPECT_NEAR(f.flow, join_of.at(f.poi), 1e-9);
  }
}

TEST_F(DensityFixture, ResultsOrderedByDensity) {
  const auto top =
      engine_->SnapshotDensityTopK(600.0, 15, Algorithm::kJoin);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i].flow, top[i - 1].flow + 1e-12) << "rank " << i;
  }
}

TEST_F(DensityFixture, SubsetRespected) {
  std::vector<PoiId> subset;
  for (const Poi& poi : dataset_->pois) {
    if (poi.id % 4 == 0) subset.push_back(poi.id);
  }
  const auto top =
      engine_->SnapshotDensityTopK(600.0, 8, Algorithm::kJoin, &subset);
  for (const PoiFlow& f : top) EXPECT_EQ(f.poi % 4, 0);
}

// Density must invert a flow ranking when a small POI carries moderate
// flow next to a big POI with slightly more flow — the "crowded broom
// closet beats the half-empty hall" case, constructed exactly.
TEST(DensityInversionTest, SmallCrowdedPoiWinsOnDensity) {
  const BuiltPlan built = BuildTinyPlan();
  const DoorGraph graph(built.plan);
  Deployment deployment;
  deployment.AddDevice(Circle{{5, 8}, 1.0});   // device 0, in room_a
  deployment.AddDevice(Circle{{15, 8}, 1.0});  // device 1, in room_b
  deployment.BuildIndex();

  PoiSet pois;
  // POI 0: a big POI (8x6 = 48 m²) containing device 0's disk.
  pois.push_back(Poi{0, "hall", Polygon::Rectangle(1, 5, 9, 11)});
  // POI 1: a small POI (2x2 = 4 m²) containing device 1's disk.
  pois.push_back(Poi{1, "closet", Polygon::Rectangle(14, 7, 16, 9)});

  // Three objects pinned at device 0 (flow_0 = 3 * pi/48 = 0.196); two
  // objects pinned at device 1 (flow_1 = 2 * pi/4 = 1.571). Densities:
  // hall 3*pi/48/48 = 0.0041, closet 2*pi/4/4 = 0.39.
  ObjectTrackingTable table;
  for (ObjectId o = 0; o < 3; ++o) table.Append({o, 0, 0.0, 100.0});
  for (ObjectId o = 3; o < 5; ++o) table.Append({o, 1, 0.0, 100.0});
  ASSERT_TRUE(table.Finalize().ok());

  EngineConfig config;
  config.vmax = 1.0;
  config.topology = TopologyMode::kOff;
  const QueryEngine engine(built.plan, graph, deployment, table, pois,
                           config);

  // Flow ranking: closet (1.571) > hall (0.196) here — make flow and
  // density disagree by checking against per-area analytics directly.
  const auto by_flow = engine.SnapshotTopK(50.0, 2, Algorithm::kJoin);
  const auto by_density =
      engine.SnapshotDensityTopK(50.0, 2, Algorithm::kJoin);
  ASSERT_EQ(by_flow.size(), 2u);
  ASSERT_EQ(by_density.size(), 2u);
  // Closet wins both here, but the magnitudes differ per definition:
  EXPECT_EQ(by_density[0].poi, 1);
  EXPECT_NEAR(by_density[0].flow, by_flow[0].flow / 4.0, 1e-6);
  EXPECT_NEAR(by_density[1].flow, by_flow[1].flow / 48.0, 1e-6);
  // Now make the hall carry MORE flow (add 5 more objects at device 0):
  // flow ranking flips to the hall, density ranking must keep the closet.
  ObjectTrackingTable crowded;
  for (ObjectId o = 0; o < 30; ++o) crowded.Append({o, 0, 0.0, 100.0});
  for (ObjectId o = 30; o < 32; ++o) crowded.Append({o, 1, 0.0, 100.0});
  ASSERT_TRUE(crowded.Finalize().ok());
  const QueryEngine crowded_engine(built.plan, graph, deployment, crowded,
                                   pois, config);
  const auto flow2 = crowded_engine.SnapshotTopK(50.0, 1, Algorithm::kJoin);
  const auto dens2 =
      crowded_engine.SnapshotDensityTopK(50.0, 1, Algorithm::kJoin);
  EXPECT_EQ(flow2[0].poi, 0);  // hall: 30 * pi/48 = 1.96 > 2 * pi/4 = 1.57
  EXPECT_EQ(dens2[0].poi, 1);  // closet: 0.39 >> hall 0.041
}

TEST(DensityEdgeTest, ZeroAreaPoiScoresZero) {
  const BuiltPlan built = BuildTinyPlan();
  const DoorGraph graph(built.plan);
  Deployment deployment;
  deployment.AddDevice(Circle{{5, 8}, 1.0});
  deployment.BuildIndex();
  PoiSet pois;
  pois.push_back(Poi{0, "line", Polygon::Rectangle(4, 8, 6, 8)});  // area 0
  pois.push_back(Poi{1, "ok", Polygon::Rectangle(4, 7, 6, 9)});
  ObjectTrackingTable table;
  table.Append({1, 0, 0.0, 100.0});
  ASSERT_TRUE(table.Finalize().ok());
  EngineConfig config;
  config.vmax = 1.0;
  config.topology = TopologyMode::kOff;
  const QueryEngine engine(built.plan, graph, deployment, table, pois,
                           config);
  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    const auto top = engine.SnapshotDensityTopK(50.0, 2, algo);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].poi, 1);
    EXPECT_GT(top[0].flow, 0.0);
    EXPECT_DOUBLE_EQ(top[1].flow, 0.0);
  }
}

}  // namespace
}  // namespace indoorflow
