// Tests for the adaptive quadtree area integrator, cross-validated against
// closed-form areas and the exact convex polygon clipper.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/geometry/area_integrator.h"
#include "src/geometry/circle_area.h"
#include "src/geometry/clip.h"
#include "src/geometry/region.h"
#include "src/geometry/tessellate.h"

namespace indoorflow {
namespace {

TEST(AreaIntegratorTest, CircleArea) {
  const Circle c{{0, 0}, 2.0};
  const AreaEstimate est = Area(Region::Make(c));
  EXPECT_NEAR(est.area, c.Area(), est.error_bound + 1e-9);
  EXPECT_LT(est.error_bound, 0.06);
}

TEST(AreaIntegratorTest, TighterToleranceTightensError) {
  const Circle c{{0, 0}, 2.0};
  AreaOptions loose;
  loose.abs_tolerance = 0.5;
  AreaOptions tight;
  tight.abs_tolerance = 0.005;
  tight.max_depth = 20;
  const AreaEstimate l = Area(Region::Make(c), loose);
  const AreaEstimate t = Area(Region::Make(c), tight);
  EXPECT_LE(t.error_bound, l.error_bound);
  EXPECT_NEAR(t.area, c.Area(), 0.01);
}

TEST(AreaIntegratorTest, RingArea) {
  const Ring ring{{1, 1}, 1.0, 3.0};
  const AreaEstimate est = Area(Region::Make(ring));
  EXPECT_NEAR(est.area, ring.Area(), est.error_bound + 1e-9);
}

TEST(AreaIntegratorTest, PolygonAreaExactOnBoxes) {
  // A rectangle polygon maps to the exact box node: kInside at the root.
  const Region r = Region::Make(Polygon::Rectangle(0, 0, 4, 2));
  const AreaEstimate est = Area(r);
  EXPECT_DOUBLE_EQ(est.area, 8.0);
  EXPECT_DOUBLE_EQ(est.error_bound, 0.0);
  // A rotated (non-axis-aligned) quadrilateral takes the generic path but
  // still converges within its certified bound.
  const Polygon diamond({{2, 0}, {4, 2}, {2, 4}, {0, 2}});
  const AreaEstimate d = Area(Region::Make(diamond));
  EXPECT_NEAR(d.area, 8.0, d.error_bound + 1e-9);
  EXPECT_LT(d.error_bound, 0.06);
}

TEST(AreaIntegratorTest, DisjointIntersectionIsZero) {
  const Region a = Region::Make(Circle{{0, 0}, 1.0});
  const Region b = Region::Make(Circle{{5, 0}, 1.0});
  const AreaEstimate est = AreaOfIntersection(a, b);
  EXPECT_DOUBLE_EQ(est.area, 0.0);
  EXPECT_DOUBLE_EQ(est.error_bound, 0.0);
}

TEST(AreaIntegratorTest, CirclePolygonIntersection) {
  // Circle centered on a rectangle corner: exactly a quarter disk inside.
  const Circle c{{0, 0}, 2.0};
  const Region circle = Region::Make(c);
  const Region rect = Region::Make(Polygon::Rectangle(0, 0, 10, 10));
  const AreaEstimate est = AreaOfIntersection(circle, rect);
  EXPECT_NEAR(est.area, c.Area() / 4.0, est.error_bound + 1e-9);
}

TEST(AreaIntegratorTest, LensAreaClosedForm) {
  // Two unit circles at distance 1: lens area = 2r^2 cos^-1(d/2r) -
  // d/2 * sqrt(4r^2 - d^2).
  const double d = 1.0;
  const double expected =
      2.0 * std::acos(d / 2.0) - d / 2.0 * std::sqrt(4.0 - d * d);
  const Region a = Region::Make(Circle{{0, 0}, 1.0});
  const Region b = Region::Make(Circle{{d, 0}, 1.0});
  AreaOptions options;
  options.abs_tolerance = 0.002;
  options.max_depth = 18;
  const AreaEstimate est = AreaOfIntersection(a, b, options);
  EXPECT_NEAR(est.area, expected, est.error_bound + 1e-9);
  EXPECT_LT(est.error_bound, 0.01);
}

TEST(AreaIntegratorTest, MatchesConvexClipperOnPolygonPairs) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const double x0 = rng.Uniform(-5, 5);
    const double y0 = rng.Uniform(-5, 5);
    const Polygon a = Polygon::Rectangle(x0, y0, x0 + rng.Uniform(1, 6),
                                         y0 + rng.Uniform(1, 6));
    const double x1 = rng.Uniform(-5, 5);
    const double y1 = rng.Uniform(-5, 5);
    const Polygon b = Polygon::Rectangle(x1, y1, x1 + rng.Uniform(1, 6),
                                         y1 + rng.Uniform(1, 6));
    const double exact = ClippedArea(a, b);
    const AreaEstimate est =
        AreaOfIntersection(Region::Make(a), Region::Make(b));
    EXPECT_NEAR(est.area, exact, est.error_bound + 1e-9)
        << "trial " << trial;
  }
}

TEST(AreaIntegratorTest, MatchesClipperOnTessellatedEllipse) {
  // Integrate Θ ∩ rectangle and compare against clipping a fine polygonal
  // approximation of Θ.
  const ExtendedEllipse theta(Circle{{0, 0}, 1.0}, Circle{{7, 0}, 1.0},
                              8.0);
  const Polygon approx = TessellateExtendedEllipse(theta, 512);
  const Polygon window = Polygon::Rectangle(2, -1, 9, 2);
  double expected = 0.0;
  {
    // approx may be non-convex in principle; the window is convex, so clip
    // approx against it.
    expected = ClippedArea(approx, window);
  }
  AreaOptions options;
  options.abs_tolerance = 0.01;
  options.max_depth = 16;
  const AreaEstimate est = AreaOfIntersection(
      Region::Make(theta), Region::Make(window), options);
  // The tessellation itself has ~0.1% area error; allow both tolerances.
  EXPECT_NEAR(est.area, expected, est.error_bound + 0.05);
}

TEST(AreaIntegratorTest, ErrorBoundIsSound) {
  // Monte-Carlo ground truth for a nontrivial CSG shape.
  const Region shape = Region::Subtract(
      Region::Intersect(Region::Make(Circle{{0, 0}, 3.0}),
                        Region::Make(Circle{{2, 0}, 3.0})),
      Region::Make(Circle{{1, 0}, 1.0}));
  const Box domain = shape.Bounds();
  Rng rng(7);
  const int n = 400000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    const Point p{rng.Uniform(domain.min_x, domain.max_x),
                  rng.Uniform(domain.min_y, domain.max_y)};
    hits += shape.Contains(p) ? 1 : 0;
  }
  const double mc_area = domain.Area() * hits / n;
  const AreaEstimate est = Area(shape);
  // Monte-Carlo standard error ~ area * sqrt(p(1-p)/n); 4 sigma margin.
  const double mc_sigma =
      domain.Area() * std::sqrt(0.25 / static_cast<double>(n));
  EXPECT_NEAR(est.area, mc_area, est.error_bound + 4.0 * mc_sigma);
}

TEST(AreaIntegratorTest, MaxCellsCapStillReturnsBound) {
  AreaOptions options;
  options.abs_tolerance = 1e-9;  // unreachable
  options.max_cells = 500;
  // A Θ-region has no exact fast path, so the adaptive loop must engage
  // and stop at the cell cap with a certified bound.
  const ExtendedEllipse theta(Circle{{0, 0}, 1.0}, Circle{{8, 0}, 1.0},
                              9.0);
  const AreaEstimate est = Area(Region::Make(theta), options);
  EXPECT_GT(est.error_bound, 0.0);
  // Reference value from a fully-converged run.
  AreaOptions tight;
  tight.abs_tolerance = 0.001;
  tight.max_depth = 20;
  tight.max_cells = 2000000;
  const AreaEstimate reference = Area(Region::Make(theta), tight);
  EXPECT_NEAR(est.area, reference.area,
              est.error_bound + reference.error_bound + 1e-9);
}

TEST(AreaIntegratorTest, ExactFastPathsAreExact) {
  // circle x rectangle
  const Circle c{{1, 1}, 2.0};
  const Region rect = Region::Make(Polygon::Rectangle(0, 0, 10, 10));
  const AreaEstimate circle_est =
      AreaOfIntersection(Region::Make(c), rect);
  EXPECT_DOUBLE_EQ(circle_est.error_bound, 0.0);
  EXPECT_NEAR(circle_est.area, CircleBoxIntersectionArea(c, Box{0, 0, 10, 10}),
              1e-12);
  // ring x rectangle
  const Ring ring{{1, 1}, 0.5, 2.0};
  const AreaEstimate ring_est =
      AreaOfIntersection(rect, Region::Make(ring));  // order-independent
  EXPECT_DOUBLE_EQ(ring_est.error_bound, 0.0);
  // rectangle x rectangle
  const AreaEstimate boxes = AreaOfIntersection(
      Region::Make(Box{0, 0, 4, 4}), Region::Make(Box{2, 2, 6, 6}));
  EXPECT_DOUBLE_EQ(boxes.area, 4.0);
  EXPECT_DOUBLE_EQ(boxes.error_bound, 0.0);
}

}  // namespace
}  // namespace indoorflow
