// Tests for the index layer: AR-tree, R-tree, aggregate R-tree.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/index/aggregate_rtree.h"
#include "src/index/artree.h"
#include "src/index/rtree.h"

namespace indoorflow {
namespace {

ObjectTrackingTable MakeTable() {
  // Object 1: records at [10,20], [40,50], [80,90].
  // Object 2: records at [15,25], [60,70].
  ObjectTrackingTable table;
  table.Append({1, 100, 10, 20});
  table.Append({1, 101, 40, 50});
  table.Append({1, 102, 80, 90});
  table.Append({2, 200, 15, 25});
  table.Append({2, 201, 60, 70});
  INDOORFLOW_CHECK(table.Finalize().ok());
  return table;
}

TEST(ARTreeTest, EntriesPerRecord) {
  const ObjectTrackingTable table = MakeTable();
  const ARTree tree = ARTree::Build(table);
  EXPECT_EQ(tree.num_entries(), 5u);
}

TEST(ARTreeTest, PointQueryActive) {
  const ObjectTrackingTable table = MakeTable();
  const ARTree tree = ARTree::Build(table);
  std::vector<ARTreeEntry> out;
  // t=45: object 1 active at device 101; object 2 inactive (gap 25..60).
  tree.PointQuery(45.0, &out);
  ASSERT_EQ(out.size(), 2u);
  std::set<ObjectId> objects;
  for (const ARTreeEntry& e : out) {
    objects.insert(table.record(e.cur).object_id);
    if (table.record(e.cur).object_id == 1) {
      EXPECT_TRUE(table.record(e.cur).Covers(45.0));
      EXPECT_EQ(table.record(e.cur).device_id, 101);
      ASSERT_NE(e.pre, kInvalidRecord);
      EXPECT_EQ(table.record(e.pre).device_id, 100);
    } else {
      EXPECT_FALSE(table.record(e.cur).Covers(45.0));  // inactive
      EXPECT_EQ(table.record(e.cur).device_id, 201);   // rd_suc
      EXPECT_EQ(table.record(e.pre).device_id, 200);   // rd_pre
    }
  }
  EXPECT_EQ(objects.size(), 2u);
}

TEST(ARTreeTest, PointQueryFirstRecordClosedStart) {
  const ObjectTrackingTable table = MakeTable();
  const ARTree tree = ARTree::Build(table);
  std::vector<ARTreeEntry> out;
  // t=10 is the very start of object 1's first record.
  tree.PointQuery(10.0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pre, kInvalidRecord);
  EXPECT_TRUE(out[0].closed_start);
}

TEST(ARTreeTest, PointQueryBeforeAndAfterData) {
  const ObjectTrackingTable table = MakeTable();
  const ARTree tree = ARTree::Build(table);
  std::vector<ARTreeEntry> out;
  tree.PointQuery(5.0, &out);
  EXPECT_TRUE(out.empty());
  tree.PointQuery(95.0, &out);  // after all records: objects unseen
  EXPECT_TRUE(out.empty());
}

TEST(ARTreeTest, AugmentedIntervalBoundaries) {
  const ObjectTrackingTable table = MakeTable();
  const ARTree tree = ARTree::Build(table);
  std::vector<ARTreeEntry> out;
  // t = 20 is the end of object 1's first record: covered by the first
  // entry ((-inf...] no — [10,20]), not by the second ((20, 50]).
  tree.PointQuery(20.0, &out);
  ASSERT_EQ(out.size(), 2u);  // object 1 first entry + object 2 entry
  for (const ARTreeEntry& e : out) {
    if (table.record(e.cur).object_id == 1) {
      EXPECT_EQ(e.pre, kInvalidRecord);
    }
  }
  // Just after 20: the gap entry (20, 50] takes over.
  tree.PointQuery(20.5, &out);
  for (const ARTreeEntry& e : out) {
    if (table.record(e.cur).object_id == 1) {
      EXPECT_NE(e.pre, kInvalidRecord);
      EXPECT_EQ(table.record(e.cur).device_id, 101);
    }
  }
}

TEST(ARTreeTest, RangeQueryFindsOverlaps) {
  const ObjectTrackingTable table = MakeTable();
  const ARTree tree = ARTree::Build(table);
  std::vector<ARTreeEntry> out;
  tree.RangeQuery(42.0, 65.0, &out);
  // Object 1: entry (20,50] overlaps; entry (50,90] overlaps.
  // Object 2: entry (25,70] overlaps.
  EXPECT_EQ(out.size(), 3u);
  tree.RangeQuery(0.0, 5.0, &out);
  EXPECT_TRUE(out.empty());
  tree.RangeQuery(0.0, 1000.0, &out);
  EXPECT_EQ(out.size(), tree.num_entries());
}

TEST(ARTreeTest, LargeRandomConsistentWithScan) {
  // Property test: AR-tree results match a brute-force scan of entries.
  Rng rng(5);
  ObjectTrackingTable table;
  for (ObjectId o = 0; o < 50; ++o) {
    double t = rng.Uniform(0, 100);
    for (int r = 0; r < 20; ++r) {
      const double ts = t + rng.Uniform(1, 20);
      const double te = ts + rng.Uniform(1, 30);
      table.Append({o, static_cast<DeviceId>(rng.UniformInt(10ULL)), ts,
                    te});
      t = te;
    }
  }
  ASSERT_TRUE(table.Finalize().ok());
  const ARTree tree = ARTree::Build(table, 8);

  // Rebuild the expected entries by hand.
  std::vector<ARTreeEntry> expected;
  for (ObjectId o : table.objects()) {
    for (RecordIndex idx : table.ChainOf(o)) {
      ARTreeEntry e;
      e.cur = idx;
      e.pre = table.PrevOf(idx);
      e.t2 = table.record(idx).te;
      e.closed_start = e.pre == kInvalidRecord;
      e.t1 = e.closed_start ? table.record(idx).ts
                            : table.record(e.pre).te;
      expected.push_back(e);
    }
  }

  std::vector<ARTreeEntry> out;
  for (int trial = 0; trial < 200; ++trial) {
    const double t = rng.Uniform(0, 1200);
    tree.PointQuery(t, &out);
    size_t expected_count = 0;
    for (const ARTreeEntry& e : expected) {
      expected_count += e.CoversTime(t) ? 1 : 0;
    }
    EXPECT_EQ(out.size(), expected_count) << "t=" << t;
  }
  for (int trial = 0; trial < 200; ++trial) {
    const double ts = rng.Uniform(0, 1100);
    const double te = ts + rng.Uniform(0, 200);
    tree.RangeQuery(ts, te, &out);
    size_t expected_count = 0;
    for (const ARTreeEntry& e : expected) {
      expected_count += e.OverlapsInterval(ts, te) ? 1 : 0;
    }
    EXPECT_EQ(out.size(), expected_count) << "[" << ts << "," << te << "]";
  }
}

TEST(RTreeTest, EmptyTree) {
  const RTree tree = RTree::BulkLoad({});
  EXPECT_TRUE(tree.empty());
  std::vector<int32_t> out;
  tree.IntersectionQuery(Box{0, 0, 1, 1}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, IntersectionQueryMatchesScan) {
  Rng rng(17);
  std::vector<RTree::Item> items;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    items.push_back(
        RTree::Item{i, Box{x, y, x + rng.Uniform(0.5, 8), y +
                           rng.Uniform(0.5, 8)}});
  }
  const std::vector<RTree::Item> reference = items;
  const RTree tree = RTree::BulkLoad(std::move(items), 8);
  EXPECT_EQ(tree.num_items(), 500u);

  std::vector<int32_t> out;
  for (int trial = 0; trial < 100; ++trial) {
    const double x = rng.Uniform(-10, 100);
    const double y = rng.Uniform(-10, 100);
    const Box query{x, y, x + rng.Uniform(1, 20), y + rng.Uniform(1, 20)};
    tree.IntersectionQuery(query, &out);
    std::set<int32_t> got(out.begin(), out.end());
    std::set<int32_t> expected;
    for (const RTree::Item& item : reference) {
      if (item.box.Intersects(query)) expected.insert(item.id);
    }
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(RTreeTest, NavigationCountsAndBoxes) {
  std::vector<RTree::Item> items;
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i % 10);
    const double y = static_cast<double>(i / 10);
    items.push_back(RTree::Item{i, Box{x, y, x + 0.5, y + 0.5}});
  }
  const RTree tree = RTree::BulkLoad(std::move(items), 4);
  const RTree::NodeId root = tree.root();
  EXPECT_FALSE(tree.IsLeaf(root));
  // Total count across root entries equals the item count, and every
  // entry's box is inside the root box region.
  int64_t total = 0;
  for (int s = 0; s < tree.NumEntries(root); ++s) {
    total += tree.EntryCount(root, s);
  }
  EXPECT_EQ(total, 100);
  // Descend to leaves and collect item ids.
  std::set<int32_t> ids;
  std::vector<RTree::NodeId> stack{root};
  while (!stack.empty()) {
    const RTree::NodeId node = stack.back();
    stack.pop_back();
    for (int s = 0; s < tree.NumEntries(node); ++s) {
      if (tree.IsLeaf(node)) {
        ids.insert(tree.EntryItem(node, s));
        EXPECT_EQ(tree.EntryCount(node, s), 1);
      } else {
        stack.push_back(tree.EntryChild(node, s));
      }
    }
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(AggregateRTreeTest, AdmitsUsesSubMbrs) {
  std::vector<AggregateRTree::ObjectEntry> objects(1);
  objects[0].object = 7;
  objects[0].mbr = Box{0, 0, 10, 10};
  objects[0].sub_mbrs = {Box{0, 0, 2, 2}, Box{8, 8, 10, 10}};
  const AggregateRTree agg = AggregateRTree::Build(std::move(objects));
  // Dead space in the overall MBR is rejected by the sub-MBR check
  // (the paper's Figure 9 scenario).
  EXPECT_FALSE(agg.Admits(0, Box{4, 4, 6, 6}));
  EXPECT_TRUE(agg.Admits(0, Box{1, 1, 3, 3}));
  EXPECT_TRUE(agg.Admits(0, Box{9, 9, 12, 12}));
  EXPECT_FALSE(agg.Admits(0, Box{20, 20, 30, 30}));  // outside overall MBR
}

TEST(AggregateRTreeTest, AdmitsWithoutSubMbrsFallsBackToMbr) {
  std::vector<AggregateRTree::ObjectEntry> objects(1);
  objects[0].object = 7;
  objects[0].mbr = Box{0, 0, 10, 10};
  const AggregateRTree agg = AggregateRTree::Build(std::move(objects));
  EXPECT_TRUE(agg.Admits(0, Box{4, 4, 6, 6}));
}

}  // namespace
}  // namespace indoorflow
