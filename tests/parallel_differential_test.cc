// Differential validation of intra-query parallelism: an engine with
// EngineConfig::threads > 1 (and parallel_threshold = 1, forcing the
// parallel path) must return bit-identical flows AND identical work
// counters for every query method, both algorithms, with and without the
// cross-query UR cache — across several dataset seeds. This is the
// enforcement half of the determinism contract documented on
// QueryEngine::SnapshotTopK and src/core/parallel_flows.h.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/flow_matrix.h"

namespace indoorflow {
namespace {

void ExpectSameFlows(const std::vector<PoiFlow>& serial,
                     const std::vector<PoiFlow>& parallel,
                     const char* what) {
  ASSERT_EQ(serial.size(), parallel.size()) << what;
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].poi, parallel[i].poi) << what << " rank " << i;
    // Bit-identical, not approximately equal: the parallel path must not
    // reorder any floating-point accumulation.
    EXPECT_EQ(serial[i].flow, parallel[i].flow) << what << " rank " << i;
  }
}

// The work counters must match too — fan-out may not change what gets
// derived, integrated, or cache-hit, only who computes it. (The timers and
// parallel_* fields legitimately differ.)
void ExpectSameWork(const QueryStats& serial, const QueryStats& parallel,
                    const char* what) {
  EXPECT_EQ(serial.objects_retrieved, parallel.objects_retrieved) << what;
  EXPECT_EQ(serial.regions_derived, parallel.regions_derived) << what;
  EXPECT_EQ(serial.presence_evaluations, parallel.presence_evaluations)
      << what;
  EXPECT_EQ(serial.pois_evaluated, parallel.pois_evaluated) << what;
  EXPECT_EQ(serial.ur_cache_hits, parallel.ur_cache_hits) << what;
}

Dataset MakeDataset(uint64_t seed) {
  OfficeDatasetConfig config;
  config.num_objects = 12;
  config.duration = 900.0;
  config.seed = seed;
  return GenerateOfficeDataset(config);
}

std::unique_ptr<QueryEngine> MakeEngine(const Dataset& dataset, int threads,
                                        bool cache) {
  EngineConfig config;
  config.threads = threads;
  config.parallel_threshold = 1;  // force the parallel path when threads > 1
  config.ur_cache.enabled = cache;
  return std::make_unique<QueryEngine>(dataset, config);
}

// Runs the full query matrix (six methods x two algorithms x three
// timestamps) against both engines and asserts bit-identity throughout.
// The engines must be fresh so cache state evolves identically.
void RunMatrix(const QueryEngine& serial, const QueryEngine& parallel) {
  const std::vector<Timestamp> times = {150.0, 450.0, 750.0};
  const Algorithm algos[] = {Algorithm::kIterative, Algorithm::kJoin};
  constexpr int kK = 6;
  constexpr double kTau = 0.4;
  for (const Algorithm algo : algos) {
    for (const Timestamp t : times) {
      QueryStats ss, ps;
      ExpectSameFlows(serial.SnapshotTopK(t, kK, algo, nullptr, &ss),
                      parallel.SnapshotTopK(t, kK, algo, nullptr, &ps),
                      "SnapshotTopK");
      ExpectSameWork(ss, ps, "SnapshotTopK");
      ss.Reset();
      ps.Reset();
      ExpectSameFlows(
          serial.IntervalTopK(t, t + 120.0, kK, algo, nullptr, &ss),
          parallel.IntervalTopK(t, t + 120.0, kK, algo, nullptr, &ps),
          "IntervalTopK");
      ExpectSameWork(ss, ps, "IntervalTopK");
      ss.Reset();
      ps.Reset();
      ExpectSameFlows(
          serial.SnapshotThreshold(t, kTau, algo, nullptr, &ss),
          parallel.SnapshotThreshold(t, kTau, algo, nullptr, &ps),
          "SnapshotThreshold");
      ExpectSameWork(ss, ps, "SnapshotThreshold");
      ss.Reset();
      ps.Reset();
      ExpectSameFlows(
          serial.IntervalThreshold(t, t + 120.0, kTau, algo, nullptr, &ss),
          parallel.IntervalThreshold(t, t + 120.0, kTau, algo, nullptr,
                                     &ps),
          "IntervalThreshold");
      ExpectSameWork(ss, ps, "IntervalThreshold");
      ss.Reset();
      ps.Reset();
      ExpectSameFlows(
          serial.SnapshotDensityTopK(t, kK, algo, nullptr, &ss),
          parallel.SnapshotDensityTopK(t, kK, algo, nullptr, &ps),
          "SnapshotDensityTopK");
      ExpectSameWork(ss, ps, "SnapshotDensityTopK");
      ss.Reset();
      ps.Reset();
      ExpectSameFlows(
          serial.IntervalDensityTopK(t, t + 120.0, kK, algo, nullptr, &ss),
          parallel.IntervalDensityTopK(t, t + 120.0, kK, algo, nullptr,
                                       &ps),
          "IntervalDensityTopK");
      ExpectSameWork(ss, ps, "IntervalDensityTopK");
    }
  }
}

TEST(ParallelDifferentialTest, AllMethodsBitIdenticalAcrossSeeds) {
  for (const uint64_t seed : {uint64_t{321}, uint64_t{99}, uint64_t{7}}) {
    SCOPED_TRACE(seed);
    const Dataset dataset = MakeDataset(seed);
    const auto serial = MakeEngine(dataset, 1, /*cache=*/false);
    const auto parallel = MakeEngine(dataset, 8, /*cache=*/false);
    RunMatrix(*serial, *parallel);
  }
}

// Same matrix with the cross-query UR cache on: the parallel path shares
// the cache's synchronized lookups/inserts, and repeated timestamps must
// produce identical hit counts and flows on both engines.
TEST(ParallelDifferentialTest, BitIdenticalWithUrCache) {
  const Dataset dataset = MakeDataset(321);
  const auto serial = MakeEngine(dataset, 1, /*cache=*/true);
  const auto parallel = MakeEngine(dataset, 8, /*cache=*/true);
  RunMatrix(*serial, *parallel);
  // Second pass hits the warm cache.
  RunMatrix(*serial, *parallel);
}

// A parallel query must actually record fan-out when forced.
TEST(ParallelDifferentialTest, ParallelStatsRecorded) {
  const Dataset dataset = MakeDataset(321);
  const auto parallel = MakeEngine(dataset, 8, /*cache=*/false);
  QueryStats stats;
  parallel->SnapshotTopK(450.0, 6, Algorithm::kIterative, nullptr, &stats);
  EXPECT_GT(stats.parallel_tasks, 0);
  const auto serial = MakeEngine(dataset, 1, /*cache=*/false);
  stats.Reset();
  serial->SnapshotTopK(450.0, 6, Algorithm::kIterative, nullptr, &stats);
  EXPECT_EQ(stats.parallel_tasks, 0);
  EXPECT_EQ(stats.parallel_ns, 0);
}

// Batch and FlowMatrix fan-out ride the same executor; their results must
// be independent of the thread count as well.
TEST(ParallelDifferentialTest, BatchAndMatrixIndependentOfThreads) {
  const Dataset dataset = MakeDataset(99);
  const auto engine = MakeEngine(dataset, 1, /*cache=*/false);
  std::vector<Timestamp> times;
  for (double t = 50.0; t < 900.0; t += 50.0) times.push_back(t);
  const auto one =
      engine->SnapshotTopKBatch(times, 5, Algorithm::kJoin, nullptr, 1);
  const auto many =
      engine->SnapshotTopKBatch(times, 5, Algorithm::kJoin, nullptr, 8);
  ASSERT_EQ(one.size(), many.size());
  for (size_t i = 0; i < one.size(); ++i) {
    ExpectSameFlows(one[i], many[i], "SnapshotTopKBatch");
  }

  FlowMatrixOptions options;
  options.bucket_seconds = 90.0;
  options.threads = 1;
  const FlowMatrix serial_matrix =
      FlowMatrix::Build(*engine, 0.0, 900.0, options);
  options.threads = 8;
  const FlowMatrix parallel_matrix =
      FlowMatrix::Build(*engine, 0.0, 900.0, options);
  ASSERT_EQ(serial_matrix.num_buckets(), parallel_matrix.num_buckets());
  ASSERT_EQ(serial_matrix.num_pois(), parallel_matrix.num_pois());
  for (size_t b = 0; b < serial_matrix.num_buckets(); ++b) {
    for (size_t p = 0; p < serial_matrix.num_pois(); ++p) {
      EXPECT_EQ(serial_matrix.FlowAt(b, static_cast<PoiId>(p)),
                parallel_matrix.FlowAt(b, static_cast<PoiId>(p)))
          << "bucket " << b << " poi " << p;
    }
  }
}

}  // namespace
}  // namespace indoorflow
