// Tests for flow time-series analysis and query statistics.

#include <gtest/gtest.h>

#include "src/core/timeline.h"
#include "src/indoor/plan_builders.h"

namespace indoorflow {
namespace {

// Scenario with a controlled temporal pattern: 3 objects parked at dev0
// (room_a) during [0, 100], then nothing; 1 object parked at dev1 (room_b)
// during [150, 250].
class TimelineFixture : public ::testing::Test {
 protected:
  TimelineFixture() : built_(BuildTinyPlan()), graph_(built_.plan) {
    deployment_.AddDevice(Circle{{5, 8}, 1.0});   // in room_a
    deployment_.AddDevice(Circle{{15, 8}, 1.0});  // in room_b
    deployment_.BuildIndex();
    pois_.push_back(Poi{0, "room_a", Polygon::Rectangle(0, 4, 10, 12)});
    pois_.push_back(Poi{1, "room_b", Polygon::Rectangle(10, 4, 20, 12)});
    for (ObjectId o = 0; o < 3; ++o) table_.Append({o, 0, 0, 100});
    table_.Append({3, 1, 150, 250});
    INDOORFLOW_CHECK(table_.Finalize().ok());
    EngineConfig config;
    config.vmax = 1.0;
    config.topology = TopologyMode::kOff;
    engine_ = std::make_unique<QueryEngine>(built_.plan, graph_,
                                            deployment_, table_, pois_,
                                            config);
  }

  BuiltPlan built_;
  DoorGraph graph_;
  Deployment deployment_;
  ObjectTrackingTable table_;
  PoiSet pois_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(TimelineFixture, FlowTimelineTracksOccupancy) {
  const auto timeline = FlowTimeline(*engine_, /*poi=*/0, 0.0, 300.0, 50.0);
  ASSERT_EQ(timeline.size(), 7u);
  // Room A busy while its 3 objects are tracked, empty afterwards.
  EXPECT_GT(timeline[0].flow, 0.0);   // t=0
  EXPECT_GT(timeline[2].flow, 0.0);   // t=100
  EXPECT_DOUBLE_EQ(timeline[4].flow, 0.0);  // t=200: objects unseen
  EXPECT_DOUBLE_EQ(timeline[6].flow, 0.0);  // t=300
  // Flow magnitude: 3 objects, each presence pi/80.
  EXPECT_NEAR(timeline[1].flow, 3.0 * std::numbers::pi / 80.0, 0.05);
}

TEST_F(TimelineFixture, PeakAndAverage) {
  const auto timeline = FlowTimeline(*engine_, 0, 0.0, 300.0, 50.0);
  const TimelinePoint peak = PeakFlow(timeline);
  EXPECT_LE(peak.t, 100.0);  // the busy phase
  EXPECT_GT(peak.flow, 0.0);
  const double average = AverageFlow(timeline);
  EXPECT_GT(average, 0.0);
  EXPECT_LT(average, peak.flow);
}

TEST_F(TimelineFixture, PeakOfEmptyTimeline) {
  const TimelinePoint peak = PeakFlow({});
  EXPECT_DOUBLE_EQ(peak.flow, 0.0);
  EXPECT_DOUBLE_EQ(AverageFlow({}), 0.0);
  EXPECT_DOUBLE_EQ(AverageFlow({{1.0, 5.0}}), 0.0);
}

TEST_F(TimelineFixture, TopPoiTimelineSwitchesWinners) {
  const std::vector<PoiId> subset = {0, 1};
  const auto timeline = TopPoiTimeline(*engine_, subset, 0.0, 300.0, 50.0);
  ASSERT_EQ(timeline.size(), 7u);
  // Early probes: room_a wins; at t=200 room_b is the only active one.
  EXPECT_EQ(timeline[0].poi, 0);
  EXPECT_EQ(timeline[4].poi, 1);
  EXPECT_GT(timeline[4].flow, 0.0);
}

TEST_F(TimelineFixture, SingleProbeTimeline) {
  const auto timeline = FlowTimeline(*engine_, 0, 50.0, 50.0, 10.0);
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_DOUBLE_EQ(timeline[0].t, 50.0);
}

TEST_F(TimelineFixture, QueryStatsCountOperations) {
  QueryStats iter_stats;
  QueryStats join_stats;
  engine_->SnapshotTopK(50.0, 2, Algorithm::kIterative, nullptr,
                        &iter_stats);
  engine_->SnapshotTopK(50.0, 2, Algorithm::kJoin, nullptr, &join_stats);
  // Three objects tracked at t=50.
  EXPECT_EQ(iter_stats.objects_retrieved, 3);
  EXPECT_EQ(join_stats.objects_retrieved, 3);
  // Iterative derives every region; the join derives at most as many.
  EXPECT_EQ(iter_stats.regions_derived, 3);
  EXPECT_LE(join_stats.regions_derived, iter_stats.regions_derived);
  // Both evaluated presences for the room_a pairs.
  EXPECT_GT(iter_stats.presence_evaluations, 0);
  EXPECT_LE(join_stats.presence_evaluations,
            iter_stats.presence_evaluations);
}

TEST_F(TimelineFixture, QueryStatsAccumulateAcrossQueries) {
  QueryStats stats;
  engine_->SnapshotTopK(50.0, 2, Algorithm::kIterative, nullptr, &stats);
  const int64_t after_one = stats.objects_retrieved;
  engine_->SnapshotTopK(50.0, 2, Algorithm::kIterative, nullptr, &stats);
  EXPECT_EQ(stats.objects_retrieved, 2 * after_one);
  stats.Reset();
  EXPECT_EQ(stats.objects_retrieved, 0);
  EXPECT_EQ(stats.presence_evaluations, 0);
}

TEST_F(TimelineFixture, IntervalQueryStats) {
  QueryStats stats;
  engine_->IntervalTopK(0.0, 250.0, 2, Algorithm::kIterative, nullptr,
                        &stats);
  EXPECT_EQ(stats.objects_retrieved, 4);  // all objects relevant
  EXPECT_EQ(stats.regions_derived, 4);
  EXPECT_GT(stats.presence_evaluations, 0);
}

}  // namespace
}  // namespace indoorflow
