// Tests for the symbolic tracking data model: OTT, reading merger,
// deployment.

#include <gtest/gtest.h>

#include "src/tracking/deployment.h"
#include "src/tracking/merger.h"
#include "src/tracking/ott.h"

namespace indoorflow {
namespace {

TEST(OttTest, FinalizeBuildsChains) {
  ObjectTrackingTable table;
  EXPECT_TRUE(table.empty());
  // Deliberately out of order (paper Table 2 layout).
  table.Append({1, 10, 100, 110});
  table.Append({2, 11, 50, 60});
  table.Append({1, 12, 200, 210});
  table.Append({1, 11, 150, 160});
  ASSERT_TRUE(table.Finalize().ok());

  const auto chain1 = table.ChainOf(1);
  ASSERT_EQ(chain1.size(), 3u);
  EXPECT_EQ(table.record(chain1[0]).device_id, 10);
  EXPECT_EQ(table.record(chain1[1]).device_id, 11);
  EXPECT_EQ(table.record(chain1[2]).device_id, 12);
  EXPECT_EQ(table.PrevOf(chain1[0]), kInvalidRecord);
  EXPECT_EQ(table.PrevOf(chain1[1]), chain1[0]);
  EXPECT_EQ(table.NextOf(chain1[1]), chain1[2]);
  EXPECT_EQ(table.NextOf(chain1[2]), kInvalidRecord);

  EXPECT_FALSE(table.empty());
  EXPECT_EQ(table.ChainOf(2).size(), 1u);
  EXPECT_TRUE(table.ChainOf(99).empty());
  EXPECT_EQ(table.objects().size(), 2u);
  EXPECT_DOUBLE_EQ(table.min_time(), 50.0);
  EXPECT_DOUBLE_EQ(table.max_time(), 210.0);
}

TEST(OttTest, FinalizeRejectsOverlap) {
  ObjectTrackingTable table;
  table.Append({1, 10, 100, 110});
  table.Append({1, 11, 105, 120});
  EXPECT_FALSE(table.Finalize().ok());
}

TEST(OttTest, TouchingRecordsAllowed) {
  ObjectTrackingTable table;
  table.Append({1, 10, 100, 110});
  table.Append({1, 11, 110, 120});
  EXPECT_TRUE(table.Finalize().ok());
}

TEST(OttTest, RejectsNegativeDuration) {
  ObjectTrackingTable table;
  table.Append({1, 10, 110, 100});
  EXPECT_FALSE(table.Finalize().ok());
}

TEST(OttTest, DoubleFinalizeFails) {
  ObjectTrackingTable table;
  table.Append({1, 10, 0, 1});
  ASSERT_TRUE(table.Finalize().ok());
  EXPECT_FALSE(table.Finalize().ok());
}

TEST(MergerTest, MergesConsecutiveSameDeviceReadings) {
  // Paper Section 2.1: consecutive raw readings by the same device merge
  // into one record [first.t, last.t].
  std::vector<RawReading> readings;
  for (int t = 0; t <= 5; ++t) {
    readings.push_back({7, 3, static_cast<double>(t)});
  }
  auto result = MergeReadings(std::move(readings));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  const TrackingRecord& rec = result->record(0);
  EXPECT_EQ(rec.object_id, 7);
  EXPECT_EQ(rec.device_id, 3);
  EXPECT_DOUBLE_EQ(rec.ts, 0.0);
  EXPECT_DOUBLE_EQ(rec.te, 5.0);
}

TEST(MergerTest, GapSplitsRecords) {
  std::vector<RawReading> readings = {
      {1, 3, 0.0}, {1, 3, 1.0},
      {1, 3, 10.0}, {1, 3, 11.0},  // gap of 9s > 1.5 * period
  };
  auto result = MergeReadings(std::move(readings));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
}

TEST(MergerTest, DeviceChangeSplitsRecords) {
  std::vector<RawReading> readings = {
      {1, 3, 0.0}, {1, 3, 1.0}, {1, 4, 2.0}, {1, 4, 3.0},
  };
  auto result = MergeReadings(std::move(readings));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ(result->record(result->ChainOf(1)[0]).device_id, 3);
  EXPECT_EQ(result->record(result->ChainOf(1)[1]).device_id, 4);
}

TEST(MergerTest, ToleratesOneMissedSample) {
  // max_gap_factor 1.5 bridges a single missed 1 Hz sample... but not two.
  std::vector<RawReading> one_missed = {{1, 3, 0.0}, {1, 3, 1.0},
                                        {1, 3, 2.5}};
  auto r1 = MergeReadings(one_missed, MergerOptions{1.0, 1.6});
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->size(), 1u);
  auto r2 = MergeReadings(one_missed, MergerOptions{1.0, 1.2});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 2u);
}

TEST(MergerTest, SingleReadingBecomesPointRecord) {
  auto result = MergeReadings({{5, 2, 42.0}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_DOUBLE_EQ(result->record(0).ts, 42.0);
  EXPECT_DOUBLE_EQ(result->record(0).te, 42.0);
}

TEST(MergerTest, UnsortedInputAcrossObjects) {
  std::vector<RawReading> readings = {
      {2, 4, 5.0}, {1, 3, 0.0}, {2, 4, 6.0}, {1, 3, 1.0},
  };
  auto result = MergeReadings(std::move(readings));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
  EXPECT_EQ(result->ChainOf(1).size(), 1u);
  EXPECT_EQ(result->ChainOf(2).size(), 1u);
}

TEST(MergerTest, RejectsBadSamplingPeriod) {
  EXPECT_FALSE(MergeReadings({}, MergerOptions{0.0, 1.5}).ok());
}

TEST(DeploymentTest, GridLookup) {
  Deployment deployment;
  for (int i = 0; i < 10; ++i) {
    deployment.AddDevice(Circle{{i * 10.0, 0.0}, 1.5});
  }
  deployment.BuildIndex();
  EXPECT_DOUBLE_EQ(deployment.max_radius(), 1.5);
  EXPECT_TRUE(deployment.RangesDisjoint());

  std::vector<DeviceId> near;
  deployment.DevicesNear({0, 0}, 0.0, &near);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0], 0);

  deployment.DevicesNear({15, 0}, 4.0, &near);  // within 4m of ranges @10,20
  ASSERT_EQ(near.size(), 2u);

  deployment.DevicesNear({500, 500}, 1.0, &near);
  EXPECT_TRUE(near.empty());
}

TEST(DeploymentTest, OverlapDetection) {
  Deployment deployment;
  deployment.AddDevice(Circle{{0, 0}, 2.0});
  deployment.AddDevice(Circle{{3, 0}, 2.0});
  deployment.BuildIndex();
  EXPECT_FALSE(deployment.RangesDisjoint());
}

TEST(DeploymentTest, LargeMarginCoversAll) {
  Deployment deployment;
  deployment.AddDevice(Circle{{0, 0}, 1.0});
  deployment.AddDevice(Circle{{100, 100}, 1.0});
  deployment.BuildIndex();
  std::vector<DeviceId> near;
  deployment.DevicesNear({50, 50}, 200.0, &near);
  EXPECT_EQ(near.size(), 2u);
}

}  // namespace
}  // namespace indoorflow
