// Tests for the flow-threshold queries (SnapshotThreshold /
// IntervalThreshold): algorithm parity, consistency with top-k,
// monotonicity in tau, subset handling, and the join's bound-driven early
// termination.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/core/engine.h"

namespace indoorflow {
namespace {

class ThresholdFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    OfficeDatasetConfig config;
    config.num_objects = 40;
    config.duration = 1200.0;
    config.seed = 515;
    dataset_ = new Dataset(GenerateOfficeDataset(config));
    EngineConfig engine_config;
    engine_config.topology = TopologyMode::kOff;
    engine_ = new QueryEngine(*dataset_, engine_config);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete dataset_;
    engine_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static QueryEngine* engine_;
};

Dataset* ThresholdFixture::dataset_ = nullptr;
QueryEngine* ThresholdFixture::engine_ = nullptr;

// Per-POI flow map from a full iterative ranking (the reference answer).
std::map<PoiId, double> AllFlows(const QueryEngine& engine, Timestamp t) {
  std::map<PoiId, double> flows;
  const auto all = engine.SnapshotTopK(t, 1 << 20, Algorithm::kIterative);
  for (const PoiFlow& f : all) flows[f.poi] = f.flow;
  return flows;
}

// A tau strictly between two adjacent flow values (or above the max /
// below the min), so float noise between algorithms cannot flip inclusion.
// Returns 0.0 (caller skips) when the two values tie — interval flows
// saturate toward |O|, producing large tie groups a threshold cannot split.
double MidTau(const std::map<PoiId, double>& flows, size_t rank) {
  std::vector<double> values;
  for (const auto& [id, flow] : flows) values.push_back(flow);
  std::sort(values.rbegin(), values.rend());
  if (rank == 0) return values.front() + 1.0;
  if (rank >= values.size()) return values.back() > 0.0 ? values.back() / 2.0
                                                        : 1e-6;
  if (values[rank - 1] - values[rank] < 1e-6) return 0.0;
  return (values[rank - 1] + values[rank]) / 2.0;
}

TEST_F(ThresholdFixture, MatchesIterativeReference) {
  const Timestamp t = 600.0;
  const auto flows = AllFlows(*engine_, t);
  for (size_t rank : {size_t{1}, size_t{3}, size_t{8}}) {
    const double tau = MidTau(flows, rank);
    if (tau <= 0.0) continue;
    const auto result =
        engine_->SnapshotThreshold(t, tau, Algorithm::kIterative);
    // Exactly the POIs whose reference flow clears tau, flow-descending.
    size_t expected = 0;
    for (const auto& [id, flow] : flows) expected += flow >= tau ? 1 : 0;
    ASSERT_EQ(result.size(), expected) << "tau=" << tau;
    for (size_t i = 0; i < result.size(); ++i) {
      EXPECT_GE(result[i].flow, tau);
      EXPECT_NEAR(result[i].flow, flows.at(result[i].poi), 1e-9);
      if (i > 0) {
        EXPECT_LE(result[i].flow, result[i - 1].flow + 1e-12);
      }
    }
  }
}

TEST_F(ThresholdFixture, SnapshotAlgorithmsAgree) {
  for (Timestamp t : {300.0, 600.0, 900.0}) {
    const auto flows = AllFlows(*engine_, t);
    for (size_t rank : {size_t{1}, size_t{2}, size_t{5}, size_t{12}}) {
      const double tau = MidTau(flows, rank);
      if (tau <= 0.0) continue;
      const auto iter =
          engine_->SnapshotThreshold(t, tau, Algorithm::kIterative);
      const auto join = engine_->SnapshotThreshold(t, tau, Algorithm::kJoin);
      ASSERT_EQ(iter.size(), join.size()) << "t=" << t << " tau=" << tau;
      for (size_t i = 0; i < iter.size(); ++i) {
        EXPECT_EQ(iter[i].poi, join[i].poi) << "rank " << i;
        EXPECT_NEAR(iter[i].flow, join[i].flow, 1e-9);
      }
    }
  }
}

TEST_F(ThresholdFixture, IntervalAlgorithmsAgree) {
  const Timestamp ts = 400.0, te = 800.0;
  const auto all =
      engine_->IntervalTopK(ts, te, 1 << 20, Algorithm::kIterative);
  std::map<PoiId, double> flows;
  for (const PoiFlow& f : all) flows[f.poi] = f.flow;
  for (size_t rank : {size_t{1}, size_t{4}, size_t{10}}) {
    const double tau = MidTau(flows, rank);
    if (tau <= 0.0) continue;
    const auto iter =
        engine_->IntervalThreshold(ts, te, tau, Algorithm::kIterative);
    const auto join =
        engine_->IntervalThreshold(ts, te, tau, Algorithm::kJoin);
    // Same POI set with matching flows. (Rank order inside exact-tie
    // groups is not comparable: the algorithms accumulate presences in
    // different orders, so tied flows differ at the 1e-15 level.)
    ASSERT_EQ(iter.size(), join.size()) << "tau=" << tau;
    std::map<PoiId, double> join_flows;
    for (const PoiFlow& f : join) join_flows[f.poi] = f.flow;
    for (const PoiFlow& f : iter) {
      ASSERT_TRUE(join_flows.contains(f.poi)) << "POI " << f.poi;
      EXPECT_NEAR(f.flow, join_flows.at(f.poi), 1e-9);
    }
    // Each result is internally ordered by nonincreasing flow.
    for (size_t i = 1; i < join.size(); ++i) {
      EXPECT_LE(join[i].flow, join[i - 1].flow + 1e-12);
    }
  }
}

TEST_F(ThresholdFixture, ConsistentWithTopK) {
  // Threshold at (just below) the k-th flow returns exactly the positive
  // prefix of the top-k ranking.
  const Timestamp t = 600.0;
  const int k = 5;
  const auto top = engine_->SnapshotTopK(t, k, Algorithm::kIterative);
  ASSERT_EQ(top.size(), static_cast<size_t>(k));
  if (top.back().flow <= 0.0) GTEST_SKIP() << "fewer than k hot POIs";
  const double tau = top.back().flow * (1.0 - 1e-9);
  const auto thresh = engine_->SnapshotThreshold(t, tau, Algorithm::kJoin);
  ASSERT_GE(thresh.size(), static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ(thresh[static_cast<size_t>(i)].poi, top[static_cast<size_t>(i)].poi);
  }
}

TEST_F(ThresholdFixture, MonotoneInTau) {
  const Timestamp t = 600.0;
  const auto flows = AllFlows(*engine_, t);
  std::set<PoiId> previous;  // result at the previous (smaller) tau
  bool first = true;
  for (size_t rank : {size_t{15}, size_t{8}, size_t{3}, size_t{1}, size_t{0}}) {
    const double tau = MidTau(flows, rank);
    if (tau <= 0.0) continue;
    const auto result = engine_->SnapshotThreshold(t, tau, Algorithm::kJoin);
    std::set<PoiId> current;
    for (const PoiFlow& f : result) current.insert(f.poi);
    if (!first) {
      // Raising tau can only shrink the result set.
      for (PoiId id : current) EXPECT_TRUE(previous.contains(id));
      EXPECT_LE(current.size(), previous.size());
    }
    previous = std::move(current);
    first = false;
  }
}

TEST_F(ThresholdFixture, AboveMaxFlowIsEmpty) {
  const Timestamp t = 600.0;
  const auto flows = AllFlows(*engine_, t);
  const double tau = MidTau(flows, 0);  // strictly above the maximum
  EXPECT_TRUE(engine_->SnapshotThreshold(t, tau, Algorithm::kIterative).empty());
  EXPECT_TRUE(engine_->SnapshotThreshold(t, tau, Algorithm::kJoin).empty());
  EXPECT_TRUE(
      engine_->IntervalThreshold(500.0, 700.0, 1e9, Algorithm::kJoin).empty());
}

TEST_F(ThresholdFixture, SubsetRestrictsCandidates) {
  const Timestamp t = 600.0;
  const auto flows = AllFlows(*engine_, t);
  std::vector<PoiId> subset;
  for (const auto& [id, flow] : flows) {
    if (id % 3 == 0) subset.push_back(id);
  }
  const double tau = MidTau(flows, 10);
  if (tau <= 0.0) GTEST_SKIP() << "degenerate flows";
  const auto result =
      engine_->SnapshotThreshold(t, tau, Algorithm::kIterative, &subset);
  for (const PoiFlow& f : result) {
    EXPECT_EQ(f.poi % 3, 0) << "POI outside the subset";
    EXPECT_GE(f.flow, tau);
  }
  // Every subset POI clearing tau appears.
  size_t expected = 0;
  for (PoiId id : subset) expected += flows.at(id) >= tau ? 1 : 0;
  EXPECT_EQ(result.size(), expected);
}

TEST_F(ThresholdFixture, JoinPrunesAtSelectiveThresholds) {
  // A selective threshold lets the join's bound cutoff skip most POIs,
  // while the iterative algorithm always evaluates all of them. Snapshot
  // flows are sparse and distinct (unlike saturated interval flows), so
  // the count bounds genuinely separate hot from cold POIs here.
  const Timestamp t = 600.0;
  const auto flows = AllFlows(*engine_, t);
  const double tau = MidTau(flows, 1);
  if (tau <= 0.0) GTEST_SKIP() << "tied top flows";

  QueryStats join_stats;
  const auto join =
      engine_->SnapshotThreshold(t, tau, Algorithm::kJoin, nullptr,
                                 &join_stats);
  QueryStats iter_stats;
  const auto iter =
      engine_->SnapshotThreshold(t, tau, Algorithm::kIterative, nullptr,
                                 &iter_stats);
  ASSERT_EQ(join.size(), iter.size());
  EXPECT_LT(join_stats.pois_evaluated, iter_stats.pois_evaluated);
  EXPECT_LE(join_stats.presence_evaluations,
            iter_stats.presence_evaluations);
}

TEST_F(ThresholdFixture, StatsAccumulateAcrossCalls) {
  QueryStats stats;
  engine_->SnapshotThreshold(600.0, 0.5, Algorithm::kJoin, nullptr, &stats);
  const int64_t first = stats.pois_evaluated;
  engine_->SnapshotThreshold(600.0, 0.5, Algorithm::kJoin, nullptr, &stats);
  EXPECT_EQ(stats.pois_evaluated, 2 * first);
}

// Threshold semantics on an empty window: no tracked objects -> no POI
// reaches any positive tau.
TEST_F(ThresholdFixture, QuietWindowIsEmpty) {
  const auto result =
      engine_->SnapshotThreshold(-100.0, 0.01, Algorithm::kJoin);
  EXPECT_TRUE(result.empty());
  const auto iter =
      engine_->SnapshotThreshold(-100.0, 0.01, Algorithm::kIterative);
  EXPECT_TRUE(iter.empty());
}

}  // namespace
}  // namespace indoorflow
