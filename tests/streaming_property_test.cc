// Property tests for the streaming monitor: replaying any prefix of a
// reading stream must leave the monitor in the same per-object state the
// historical engine derives from the merged prefix OTT — detected or not.
// (The monitor's live semantics differ from a full historical query only
// in that rd_suc does not exist yet; the engine on a *truncated* table has
// no successor records either, so the two must agree exactly.)

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/streaming.h"
#include "src/sim/detector.h"
#include "src/sim/generators.h"

namespace indoorflow {
namespace {

struct StreamScenario {
  BuiltPlan built;
  std::unique_ptr<DoorGraph> graph;
  Deployment deployment;
  PoiSet pois;
  std::vector<RawReading> readings;  // time-sorted
};

StreamScenario MakeScenario(uint64_t seed, int objects) {
  StreamScenario s;
  s.built = BuildOfficePlan({});
  s.graph = std::make_unique<DoorGraph>(s.built.plan);
  for (const Door& door : s.built.plan.doors()) {
    s.deployment.AddDevice(Circle{door.position, 1.5});
  }
  s.deployment.BuildIndex();
  Rng poi_rng(seed ^ 0x77);
  s.pois = GeneratePois(s.built, 25, poi_rng);

  const RandomWaypointModel model(s.built, *s.graph);
  const ProximityDetector detector(s.deployment);
  for (ObjectId o = 0; o < objects; ++o) {
    Rng rng(seed * 131 + static_cast<uint64_t>(o));
    WaypointOptions options;
    options.duration = 600.0;
    options.max_pause = 90.0;
    const Trajectory traj = model.Generate(o, options, rng);
    detector.DetectReadings(traj, DetectionOptions{}, &s.readings);
  }
  std::sort(s.readings.begin(), s.readings.end(),
            [](const RawReading& a, const RawReading& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.object_id != b.object_id) return a.object_id < b.object_id;
              return a.device_id < b.device_id;
            });
  return s;
}

class StreamingEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingEquivalence, PrefixReplayMatchesHistoricalEngine) {
  const StreamScenario s = MakeScenario(GetParam(), 5);
  if (s.readings.empty()) GTEST_SKIP() << "no detections for this seed";

  StreamingOptions monitor_options;
  monitor_options.vmax = 1.1;
  monitor_options.expiry_seconds = 1e9;  // never expire: pure comparison
  StreamingMonitor monitor(s.deployment, s.pois, monitor_options);

  // Replay, pausing at several cut points.
  const std::vector<double> cuts = {120.0, 250.0, 400.0, 590.0};
  size_t next = 0;
  Rng sample_rng(GetParam() ^ 0xfeed);
  const Box domain = s.built.plan.Bounds();
  for (const double cut : cuts) {
    while (next < s.readings.size() && s.readings[next].t <= cut) {
      ASSERT_TRUE(monitor.Ingest(s.readings[next]).ok());
      ++next;
    }
    if (next == 0) continue;

    // Historical engine over the merged prefix.
    std::vector<RawReading> prefix(s.readings.begin(),
                                   s.readings.begin() +
                                       static_cast<ptrdiff_t>(next));
    auto table = MergeReadings(std::move(prefix));
    ASSERT_TRUE(table.ok());
    EngineConfig config;
    config.vmax = monitor_options.vmax;
    config.topology = TopologyMode::kOff;
    const QueryEngine engine(s.built.plan, *s.graph, s.deployment, *table,
                             s.pois, config);

    // Last reading per object, to identify the one deliberate semantic
    // difference: within the merge gap after an object's last reading the
    // monitor still extends the open record ("probably still in range"),
    // while the truncated merger has already closed it — the regions then
    // legitimately differ (disk vs ring). Skip that window.
    std::map<ObjectId, double> last_seen;
    for (size_t i = 0; i < next; ++i) {
      last_seen[s.readings[i].object_id] =
          std::max(last_seen[s.readings[i].object_id], s.readings[i].t);
    }
    const double max_gap = 1.5;  // MergerOptions defaults: 1.5 * 1s

    // Per-object: the live region equals the historical one derived from
    // the truncated table (sampled point-wise).
    for (ObjectId o = 0; o < 5; ++o) {
      const auto seen = last_seen.find(o);
      if (seen != last_seen.end() && cut - seen->second > 0.0 &&
          cut - seen->second <= max_gap) {
        continue;  // ambiguous open-record window (see above)
      }
      const Region live = monitor.LiveRegion(o, cut);
      const Region historical = engine.ObjectRegionAt(o, cut);
      if (live.IsEmpty() || historical.IsEmpty()) {
        // Both sides must agree the object is unknown; the engine may
        // still produce a region from rd_pre when the monitor has seen no
        // reading at all for this object yet (and vice versa is a bug).
        if (live.IsEmpty()) {
          EXPECT_TRUE(table->ChainOf(o).empty())
              << "monitor lost object " << o << " at t=" << cut;
        }
        continue;
      }
      for (int i = 0; i < 400; ++i) {
        const Point p{sample_rng.Uniform(domain.min_x, domain.max_x),
                      sample_rng.Uniform(domain.min_y, domain.max_y)};
        EXPECT_EQ(live.Contains(p), historical.Contains(p))
            << "object " << o << " t=" << cut << " p=(" << p.x << ", "
            << p.y << ")";
      }
    }

    // Internal consistency: CurrentTopK must equal flows recomputed from
    // the per-object LiveRegion API (same integrator configuration).
    std::vector<double> expected(s.pois.size(), 0.0);
    for (ObjectId o = 0; o < 5; ++o) {
      const Region live = monitor.LiveRegion(o, cut);
      if (live.IsEmpty()) continue;
      for (const Poi& poi : s.pois) {
        expected[static_cast<size_t>(poi.id)] += Presence(
            live, poi.Area(), Region::Make(poi.shape), monitor_options.flow);
      }
    }
    const auto live_all =
        monitor.CurrentTopK(cut, static_cast<int>(s.pois.size()));
    for (const PoiFlow& f : live_all) {
      EXPECT_NEAR(f.flow, expected[static_cast<size_t>(f.poi)], 1e-9)
          << "POI " << f.poi << " t=" << cut;
    }
  }
}

// With a tight expiry the monitor's contributing set collapses to "objects
// seen at the cut itself" — exactly the objects the truncated table's
// AR-tree covers at the cut — so live and historical flows match exactly.
TEST_P(StreamingEquivalence, TightExpiryMatchesEngineExactly) {
  const StreamScenario s = MakeScenario(GetParam() ^ 0xbeef, 5);
  if (s.readings.empty()) GTEST_SKIP() << "no detections for this seed";

  StreamingOptions monitor_options;
  monitor_options.vmax = 1.1;
  monitor_options.expiry_seconds = 0.5;  // under the 1s sampling period
  StreamingMonitor monitor(s.deployment, s.pois, monitor_options);

  // Cut exactly at reading times so "seen at the cut" is well-populated.
  const std::vector<size_t> cut_indices = {s.readings.size() / 3,
                                           (2 * s.readings.size()) / 3,
                                           s.readings.size() - 1};
  size_t next = 0;
  for (const size_t cut_index : cut_indices) {
    const double cut = s.readings[cut_index].t;
    while (next < s.readings.size() && s.readings[next].t <= cut) {
      ASSERT_TRUE(monitor.Ingest(s.readings[next]).ok());
      ++next;
    }
    std::vector<RawReading> prefix(s.readings.begin(),
                                   s.readings.begin() +
                                       static_cast<ptrdiff_t>(next));
    auto table = MergeReadings(std::move(prefix));
    ASSERT_TRUE(table.ok());
    EngineConfig config;
    config.vmax = monitor_options.vmax;
    config.topology = TopologyMode::kOff;
    const QueryEngine engine(s.built.plan, *s.graph, s.deployment, *table,
                             s.pois, config);
    const auto live = monitor.CurrentTopK(cut, 10);
    const auto hist = engine.SnapshotTopK(cut, 10, Algorithm::kIterative);
    ASSERT_EQ(live.size(), hist.size()) << "t=" << cut;
    for (size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(live[i].poi, hist[i].poi) << "t=" << cut << " rank " << i;
      EXPECT_NEAR(live[i].flow, hist[i].flow, 1e-9) << "t=" << cut;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingEquivalence,
                         ::testing::Range<uint64_t>(4000, 4008));

// Before an object's first reading there is no evidence at all: the live
// region must be empty, not the (future) detection disk. Regression test —
// the pre-sharding monitor answered the open record's disk for any
// t < open.ts, including t long before the object entered the space.
TEST(StreamingEdgeTest, RegionBeforeFirstReadingIsEmpty) {
  Deployment deployment;
  deployment.AddDevice(Circle{{0, 0}, 1.0});
  deployment.AddDevice(Circle{{1.5, 0}, 1.0});  // overlaps dev0's disk
  deployment.BuildIndex();
  PoiSet pois;
  pois.push_back(Poi{0, "west", Polygon::Rectangle(-2, -2, 2, 2)});

  StreamingOptions options;
  options.vmax = 1.0;
  StreamingMonitor monitor(deployment, pois, options);
  ASSERT_TRUE(monitor.Ingest({1, 0, 100.0}).ok());

  EXPECT_TRUE(monitor.LiveRegion(1, 0.0).IsEmpty());
  EXPECT_TRUE(monitor.LiveRegion(1, 99.9).IsEmpty());
  EXPECT_FALSE(monitor.LiveRegion(1, 100.0).IsEmpty());
  // Same question via flows: before the first reading the object must not
  // contribute.
  const auto before = monitor.CurrentTopK(50.0, 1);
  EXPECT_DOUBLE_EQ(before[0].flow, 0.0);

  // After a device hand-off the earliest evidence is the *last* record's
  // start, not the new open record's: at t = 100 the region is the two
  // disks' (nonempty) intersection, whereas anchoring "first reading" on
  // the open record would wrongly report empty. Strictly before the first
  // reading it stays empty.
  ASSERT_TRUE(monitor.Ingest({1, 1, 130.0}).ok());
  EXPECT_TRUE(monitor.LiveRegion(1, 99.0).IsEmpty());
  EXPECT_FALSE(monitor.LiveRegion(1, 100.0).IsEmpty());
  EXPECT_FALSE(monitor.LiveRegion(1, 130.0).IsEmpty());
}

// Ingest order freedom: interleaving objects differently must not change
// the monitor's state (per-object streams are independent).
TEST(StreamingOrderTest, CrossObjectInterleavingIsIrrelevant) {
  const StreamScenario s = MakeScenario(77, 4);
  if (s.readings.empty()) GTEST_SKIP();

  StreamingOptions options;
  options.vmax = 1.1;
  StreamingMonitor by_time(s.deployment, s.pois, options);
  for (const RawReading& r : s.readings) {
    ASSERT_TRUE(by_time.Ingest(r).ok());
  }

  // Same readings, but grouped per object (still time-ordered within one).
  StreamingMonitor by_object(s.deployment, s.pois, options);
  for (ObjectId o = 0; o < 4; ++o) {
    for (const RawReading& r : s.readings) {
      if (r.object_id == o) {
        ASSERT_TRUE(by_object.Ingest(r).ok());
      }
    }
  }

  const Timestamp now = by_time.now();
  EXPECT_DOUBLE_EQ(by_object.now(), now);
  const auto a = by_time.CurrentTopK(now, 8);
  const auto b = by_object.CurrentTopK(now, 8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].poi, b[i].poi);
    EXPECT_NEAR(a[i].flow, b[i].flow, 1e-12);
  }
}

}  // namespace
}  // namespace indoorflow
