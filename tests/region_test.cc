// Unit tests for the Region CSG machinery: containment, bounds, and the
// conservativeness of box classification.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/geometry/region.h"

namespace indoorflow {
namespace {

// Verifies that Classify(box) is consistent with membership of sampled
// points: kInside boxes contain only members, kOutside boxes none.
void CheckClassifyConservative(const Region& region, const Box& domain,
                               uint64_t seed, int boxes = 200,
                               int samples_per_box = 25) {
  Rng rng(seed);
  for (int i = 0; i < boxes; ++i) {
    const double x0 = rng.Uniform(domain.min_x, domain.max_x);
    const double y0 = rng.Uniform(domain.min_y, domain.max_y);
    const double w = rng.Uniform(0.01, domain.Width() / 3.0);
    const double h = rng.Uniform(0.01, domain.Height() / 3.0);
    const Box box{x0, y0, x0 + w, y0 + h};
    const BoxClass cls = region.Classify(box);
    if (cls == BoxClass::kBoundary) continue;
    for (int j = 0; j < samples_per_box; ++j) {
      const Point p{rng.Uniform(box.min_x, box.max_x),
                    rng.Uniform(box.min_y, box.max_y)};
      if (cls == BoxClass::kInside) {
        EXPECT_TRUE(region.Contains(p))
            << "kInside box contains non-member (" << p.x << "," << p.y
            << ")";
      } else {
        EXPECT_FALSE(region.Contains(p))
            << "kOutside box contains member (" << p.x << "," << p.y << ")";
      }
    }
  }
}

TEST(RegionTest, EmptyRegion) {
  const Region empty;
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(empty.Contains({0, 0}));
  EXPECT_EQ(empty.Classify(Box{0, 0, 1, 1}), BoxClass::kOutside);
}

TEST(RegionTest, CirclePrimitive) {
  const Region r = Region::Make(Circle{{0, 0}, 2.0});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains({1, 1}));
  EXPECT_FALSE(r.Contains({2, 2}));
  EXPECT_EQ(r.Classify(Box{-0.5, -0.5, 0.5, 0.5}), BoxClass::kInside);
  EXPECT_EQ(r.Classify(Box{3, 3, 4, 4}), BoxClass::kOutside);
  // Box [1.5,2.5]^2 lies entirely outside (nearest corner at ~2.12).
  EXPECT_EQ(r.Classify(Box{1.5, 1.5, 2.5, 2.5}), BoxClass::kOutside);
  EXPECT_EQ(r.Classify(Box{1.0, 1.0, 2.5, 2.5}), BoxClass::kBoundary);
  CheckClassifyConservative(r, Box{-3, -3, 3, 3}, 1);
}

TEST(RegionTest, DegenerateCircleIsEmpty) {
  EXPECT_TRUE(Region::Make(Circle{{0, 0}, 0.0}).IsEmpty());
  EXPECT_TRUE(Region::Make(Circle{{0, 0}, -1.0}).IsEmpty());
}

TEST(RegionTest, RingPrimitive) {
  const Region r = Region::Make(Ring{{0, 0}, 1.0, 2.0});
  EXPECT_FALSE(r.Contains({0, 0}));
  EXPECT_TRUE(r.Contains({1.5, 0}));
  EXPECT_FALSE(r.Contains({2.5, 0}));
  // A box straddling the hole.
  EXPECT_EQ(r.Classify(Box{-0.3, -0.3, 0.3, 0.3}), BoxClass::kOutside);
  CheckClassifyConservative(r, Box{-3, -3, 3, 3}, 2);
}

TEST(RegionTest, PolygonPrimitive) {
  const Polygon ell({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  const Region r = Region::Make(ell);
  EXPECT_TRUE(r.Contains({1, 3}));
  EXPECT_FALSE(r.Contains({3, 3}));
  EXPECT_EQ(r.Classify(Box{0.5, 0.5, 1.5, 1.5}), BoxClass::kInside);
  EXPECT_EQ(r.Classify(Box{2.5, 2.5, 3.5, 3.5}), BoxClass::kOutside);
  EXPECT_EQ(r.Classify(Box{1.5, 1.5, 2.5, 2.5}), BoxClass::kBoundary);
  // A box enclosing the whole polygon is mixed.
  EXPECT_EQ(r.Classify(Box{-1, -1, 5, 5}), BoxClass::kBoundary);
  CheckClassifyConservative(r, Box{-1, -1, 5, 5}, 3);
}

TEST(RegionTest, ExtendedEllipsePrimitive) {
  const ExtendedEllipse theta(Circle{{0, 0}, 1.0}, Circle{{8, 0}, 1.0},
                              8.0);
  const Region r = Region::Make(theta);
  EXPECT_TRUE(r.Contains({4, 0}));
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_FALSE(r.Contains({4, 5}));
  CheckClassifyConservative(r, Box{-4, -4, 12, 4}, 4);
}

TEST(RegionTest, IntersectionSemantics) {
  const Region a = Region::Make(Circle{{0, 0}, 2.0});
  const Region b = Region::Make(Circle{{2, 0}, 2.0});
  const Region i = Region::Intersect(a, b);
  EXPECT_TRUE(i.Contains({1, 0}));
  EXPECT_FALSE(i.Contains({-1.5, 0}));
  EXPECT_FALSE(i.Contains({3.5, 0}));
  // Bounds of the intersection are within both primitive bounds.
  EXPECT_TRUE(a.Bounds().Contains(i.Bounds()));
  EXPECT_TRUE(b.Bounds().Contains(i.Bounds()));
  CheckClassifyConservative(i, Box{-3, -3, 5, 3}, 5);
}

TEST(RegionTest, IntersectionWithEmptyIsEmpty) {
  const Region a = Region::Make(Circle{{0, 0}, 2.0});
  EXPECT_TRUE(Region::Intersect(a, Region()).IsEmpty());
  EXPECT_TRUE(Region::Intersect(Region(), a).IsEmpty());
}

TEST(RegionTest, UnionSemantics) {
  std::vector<Region> parts;
  parts.push_back(Region::Make(Circle{{0, 0}, 1.0}));
  parts.push_back(Region::Make(Circle{{5, 0}, 1.0}));
  parts.push_back(Region());
  const Region u = Region::Union(std::move(parts));
  EXPECT_TRUE(u.Contains({0, 0}));
  EXPECT_TRUE(u.Contains({5, 0}));
  EXPECT_FALSE(u.Contains({2.5, 0}));
  EXPECT_EQ(u.Classify(Box{-0.5, -0.5, 0.5, 0.5}), BoxClass::kInside);
  EXPECT_EQ(u.Classify(Box{2, -0.2, 3, 0.2}), BoxClass::kOutside);
  CheckClassifyConservative(u, Box{-2, -2, 7, 2}, 6);
}

TEST(RegionTest, UnionOfOnePartIsThatPart) {
  std::vector<Region> parts;
  parts.push_back(Region::Make(Circle{{0, 0}, 1.0}));
  const Region u = Region::Union(std::move(parts));
  EXPECT_TRUE(u.Contains({0.9, 0}));
  EXPECT_FALSE(u.Contains({1.1, 0}));
}

TEST(RegionTest, DifferenceSemantics) {
  const Region a = Region::Make(Circle{{0, 0}, 3.0});
  const Region b = Region::Make(Circle{{0, 0}, 1.0});
  const Region d = Region::Subtract(a, b);
  EXPECT_FALSE(d.Contains({0, 0}));
  EXPECT_TRUE(d.Contains({2, 0}));
  EXPECT_FALSE(d.Contains({4, 0}));
  CheckClassifyConservative(d, Box{-4, -4, 4, 4}, 7);
}

TEST(RegionTest, SubtractEmptyIsIdentity) {
  const Region a = Region::Make(Circle{{0, 0}, 3.0});
  const Region d = Region::Subtract(a, Region());
  EXPECT_TRUE(d.Contains({0, 0}));
  EXPECT_TRUE(Region::Subtract(Region(), a).IsEmpty());
}

TEST(RegionTest, NestedCsgConservative) {
  // (ringA ∩ ringB) ∪ (circle \ polygon): a shape similar in structure to
  // real uncertainty regions.
  const Region ring_a = Region::Make(Ring{{0, 0}, 1.0, 4.0});
  const Region ring_b = Region::Make(Ring{{5, 0}, 1.0, 4.0});
  const Region lens = Region::Intersect(ring_a, ring_b);
  const Region cut = Region::Subtract(
      Region::Make(Circle{{2.5, 5}, 2.0}),
      Region::Make(Polygon::Rectangle(1.5, 4, 3.5, 6)));
  const Region shape = Region::Union(lens, cut);
  CheckClassifyConservative(shape, Box{-5, -5, 10, 8}, 8, 400);
}

}  // namespace
}  // namespace indoorflow
