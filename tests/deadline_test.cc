// Tests for per-request execution control (src/common/deadline.h):
// Deadline arithmetic, CancelToken, QueryControl's sticky first-cause-wins
// abort record, and the engine integration contract — an expired control
// makes every query method return with Aborted() set (the partial result
// is discarded by the caller), while an infinite control is bit-identical
// to passing no control at all.

#include "src/common/deadline.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/sim/generators.h"

namespace indoorflow {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.is_infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingNanos(), Deadline::kInfiniteNs);
  EXPECT_FALSE(Deadline::Infinite().Expired());
}

TEST(DeadlineTest, PastPointIsExpired) {
  const Deadline deadline = Deadline::AtNanos(MonotonicNowNs() - 1);
  EXPECT_FALSE(deadline.is_infinite());
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingNanos(), 0);
}

TEST(DeadlineTest, NonPositiveAfterMillisIsExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).Expired());
}

TEST(DeadlineTest, FarFutureDeadlineIsNotExpired) {
  const Deadline deadline = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingNanos(), 0);
  EXPECT_LE(deadline.RemainingNanos(), 60'000'000'000);
}

TEST(CancelTokenTest, CancelIsObservedAndSticky) {
  CancelToken token;
  EXPECT_FALSE(token.Cancelled());
  token.Cancel();
  EXPECT_TRUE(token.Cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.Cancelled());
}

TEST(QueryControlTest, DefaultNeverAborts) {
  QueryControl control;
  EXPECT_FALSE(control.ShouldAbort());
  EXPECT_FALSE(control.Aborted());
  EXPECT_EQ(control.reason(), AbortReason::kNone);
}

TEST(QueryControlTest, ExpiredDeadlineAbortsWithDeadlineReason) {
  QueryControl control(Deadline::AtNanos(MonotonicNowNs() - 1));
  EXPECT_FALSE(control.Aborted());  // no poll has happened yet
  EXPECT_TRUE(control.ShouldAbort());
  EXPECT_TRUE(control.Aborted());
  EXPECT_EQ(control.reason(), AbortReason::kDeadline);
}

TEST(QueryControlTest, CancelTokenAbortsWithCancelledReason) {
  CancelToken token;
  QueryControl control(Deadline::Infinite(), &token);
  EXPECT_FALSE(control.ShouldAbort());
  token.Cancel();
  EXPECT_TRUE(control.ShouldAbort());
  EXPECT_EQ(control.reason(), AbortReason::kCancelled);
}

TEST(QueryControlTest, FirstObservedCauseWins) {
  // Deadline trips first; a cancellation arriving later must not rewrite
  // the recorded reason (the server maps it to the response code).
  CancelToken token;
  QueryControl control(Deadline::AtNanos(MonotonicNowNs() - 1), &token);
  EXPECT_TRUE(control.ShouldAbort());
  ASSERT_EQ(control.reason(), AbortReason::kDeadline);
  token.Cancel();
  EXPECT_TRUE(control.ShouldAbort());
  EXPECT_EQ(control.reason(), AbortReason::kDeadline);
}

TEST(QueryControlTest, CancelCheckedBeforeDeadline) {
  // Both conditions hold before the first poll: cancellation is checked
  // first, deterministically.
  CancelToken token;
  token.Cancel();
  QueryControl control(Deadline::AtNanos(MonotonicNowNs() - 1), &token);
  EXPECT_TRUE(control.ShouldAbort());
  EXPECT_EQ(control.reason(), AbortReason::kCancelled);
}

// ---------------------------------------------------------------------------
// Engine integration.

class DeadlineEngineFixture : public ::testing::Test {
 protected:
  DeadlineEngineFixture() {
    OfficeDatasetConfig config;
    config.num_objects = 20;
    config.duration = 600.0;
    config.seed = 99;
    dataset_ = GenerateOfficeDataset(config);
    engine_ = std::make_unique<QueryEngine>(dataset_, EngineConfig{});
  }

  Dataset dataset_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(DeadlineEngineFixture, ExpiredControlAbortsEveryQueryMethod) {
  for (const Algorithm algorithm :
       {Algorithm::kJoin, Algorithm::kIterative}) {
    QueryControl snapshot_control(Deadline::AtNanos(MonotonicNowNs() - 1));
    engine_->SnapshotTopK(300.0, 5, algorithm, nullptr, nullptr, nullptr,
                          &snapshot_control);
    EXPECT_TRUE(snapshot_control.Aborted());
    EXPECT_EQ(snapshot_control.reason(), AbortReason::kDeadline);

    QueryControl interval_control(Deadline::AtNanos(MonotonicNowNs() - 1));
    engine_->IntervalTopK(200.0, 400.0, 5, algorithm, nullptr, nullptr,
                          nullptr, &interval_control);
    EXPECT_TRUE(interval_control.Aborted());

    QueryControl density_control(Deadline::AtNanos(MonotonicNowNs() - 1));
    engine_->SnapshotDensityTopK(300.0, 5, algorithm, nullptr, nullptr,
                                 nullptr, &density_control);
    EXPECT_TRUE(density_control.Aborted());
  }
}

TEST_F(DeadlineEngineFixture, CancelledControlAbortsWithCancelledReason) {
  CancelToken token;
  token.Cancel();
  QueryControl control(Deadline::Infinite(), &token);
  engine_->SnapshotTopK(300.0, 5, Algorithm::kJoin, nullptr, nullptr,
                        nullptr, &control);
  EXPECT_TRUE(control.Aborted());
  EXPECT_EQ(control.reason(), AbortReason::kCancelled);
}

TEST_F(DeadlineEngineFixture, InfiniteControlIsBitIdenticalToNoControl) {
  for (const Algorithm algorithm :
       {Algorithm::kJoin, Algorithm::kIterative}) {
    const std::vector<PoiFlow> plain =
        engine_->SnapshotTopK(300.0, 10, algorithm);
    QueryControl control;
    const std::vector<PoiFlow> controlled = engine_->SnapshotTopK(
        300.0, 10, algorithm, nullptr, nullptr, nullptr, &control);
    EXPECT_FALSE(control.Aborted());
    ASSERT_EQ(plain.size(), controlled.size());
    for (size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain[i].poi, controlled[i].poi);
      // Bit-identical, not approximately equal: the control poll must not
      // perturb any floating-point accumulation order.
      EXPECT_EQ(plain[i].flow, controlled[i].flow);
    }

    const std::vector<PoiFlow> plain_interval =
        engine_->IntervalTopK(200.0, 400.0, 10, algorithm);
    QueryControl interval_control;
    const std::vector<PoiFlow> controlled_interval = engine_->IntervalTopK(
        200.0, 400.0, 10, algorithm, nullptr, nullptr, nullptr,
        &interval_control);
    EXPECT_FALSE(interval_control.Aborted());
    ASSERT_EQ(plain_interval.size(), controlled_interval.size());
    for (size_t i = 0; i < plain_interval.size(); ++i) {
      EXPECT_EQ(plain_interval[i].poi, controlled_interval[i].poi);
      EXPECT_EQ(plain_interval[i].flow, controlled_interval[i].flow);
    }
  }
}

TEST_F(DeadlineEngineFixture, ParallelFanOutHonorsExpiredControl) {
  // Same contract with intra-query parallelism on: workers observe the
  // expired control and the query still returns (no wedge), Aborted() set.
  EngineConfig config;
  config.threads = 4;
  config.parallel_threshold = 1;
  QueryEngine parallel_engine(dataset_, config);
  QueryControl control(Deadline::AtNanos(MonotonicNowNs() - 1));
  parallel_engine.SnapshotTopK(300.0, 5, Algorithm::kIterative, nullptr,
                               nullptr, nullptr, &control);
  EXPECT_TRUE(control.Aborted());
}

}  // namespace
}  // namespace indoorflow
