// Tests for multi-floor support: the "unfolded building" plan, cross-floor
// walking distances, topology-check pruning of cross-floor Euclidean
// leakage, and end-to-end queries on a two-floor dataset.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/indoor/indoor_distance.h"
#include "src/indoor/plan_builders.h"
#include "src/sim/detector.h"

namespace indoorflow {
namespace {

MultiFloorConfig SmallTwoFloor() {
  MultiFloorConfig config;
  config.floor.num_rows = 1;
  config.floor.rooms_per_side = 3;
  config.num_floors = 2;
  config.stair_length = 8.0;
  return config;
}

TEST(MultiFloorPlanTest, StructureAndFloors) {
  const BuiltPlan built = BuildMultiFloorOfficePlan(SmallTwoFloor());
  EXPECT_TRUE(built.plan.Validate().ok());
  // 2 floors x (1 spine + 1 hallway + 6 rooms) + 1 staircase.
  EXPECT_EQ(built.room_ids.size(), 12u);
  EXPECT_EQ(built.hallway_ids.size(), 4u);
  EXPECT_EQ(built.plan.partitions().size(), 17u);
  ASSERT_EQ(built.partition_floor.size(), built.plan.partitions().size());
  // Floors tagged 0 and 1.
  int floor0 = 0;
  int floor1 = 0;
  for (const Partition& part : built.plan.partitions()) {
    (built.FloorOf(part.id) == 0 ? floor0 : floor1) += 1;
  }
  EXPECT_EQ(floor0, 9);  // 8 floor-0 partitions + the staircase
  EXPECT_EQ(floor1, 8);
}

TEST(MultiFloorPlanTest, SingleFloorDegeneratesToOffice) {
  MultiFloorConfig config = SmallTwoFloor();
  config.num_floors = 1;
  const BuiltPlan multi = BuildMultiFloorOfficePlan(config);
  const BuiltPlan single = BuildOfficePlan(config.floor);
  EXPECT_EQ(multi.plan.partitions().size(), single.plan.partitions().size());
  EXPECT_EQ(multi.plan.doors().size(), single.plan.doors().size());
}

TEST(MultiFloorPlanTest, CrossFloorDistanceGoesThroughStairs) {
  const BuiltPlan built = BuildMultiFloorOfficePlan(SmallTwoFloor());
  const DoorGraph graph(built.plan);
  const IndoorDistance dist(built.plan, graph);
  // Centroids of a floor-0 room and the corresponding floor-1 room.
  PartitionId room0 = kInvalidPartition;
  PartitionId room1 = kInvalidPartition;
  for (PartitionId id : built.room_ids) {
    if (built.plan.partition(id).name == "f0_room_0a0") room0 = id;
    if (built.plan.partition(id).name == "f1_room_0a0") room1 = id;
  }
  ASSERT_NE(room0, kInvalidPartition);
  ASSERT_NE(room1, kInvalidPartition);
  const Point p0 = built.plan.partition(room0).shape.Centroid();
  const Point p1 = built.plan.partition(room1).shape.Centroid();
  const double d = dist.Between(p0, p1);
  ASSERT_FALSE(std::isinf(d));
  // The walk must cover at least the stair length plus both room-to-spine
  // approaches; it is far longer than the bogus straight line between the
  // floors' coordinate bands.
  EXPECT_GT(d, 8.0 + 10.0);
  EXPECT_GT(d, Distance(p0, p1));
}

TEST(MultiFloorPlanTest, TopologyCheckPrunesCrossFloorLeakage) {
  const BuiltPlan built = BuildMultiFloorOfficePlan(SmallTwoFloor());
  const DoorGraph graph(built.plan);
  const IndoorDistance distance(built.plan, graph);
  Deployment deployment;
  const Box f0_spine = built.plan.partition(built.hallway_ids[0])
                           .shape.Bounds();
  const Point dev_pos{f0_spine.Center().x, f0_spine.max_y - 2.0};
  deployment.AddDevice(Circle{dev_pos, 1.0});
  deployment.BuildIndex();

  // Target: the far floor-1 room, whose straight-line distance across the
  // band gap is much shorter than the walk via the staircase. Pick the ring
  // budget strictly between the two so the Euclidean region leaks into the
  // room while no indoor walk can reach it.
  PartitionId far_room = kInvalidPartition;
  for (PartitionId id : built.room_ids) {
    if (built.plan.partition(id).name == "f1_room_0b2") far_room = id;
  }
  ASSERT_NE(far_room, kInvalidPartition);
  const Point target = built.plan.partition(far_room).shape.Centroid();
  const double euclid_dist = Distance(dev_pos, target);
  const double indoor_dist = distance.Between(dev_pos, target);
  // The gap must be wide enough that even the partition's nearest point
  // (its door) is beyond the budget.
  ASSERT_LT(euclid_dist + 12.0, indoor_dist)
      << "test geometry must have a wide Euclid/indoor gap";
  const double budget = (euclid_dist + indoor_dist) / 2.0;  // Vmax = 1

  ObjectTrackingTable table;
  table.Append({1, 0, 0, 0});
  table.Append({1, 0, 2.0 * budget, 2.0 * budget});
  ASSERT_TRUE(table.Finalize().ok());

  const TopologyChecker checker(built.plan, graph, deployment);
  const UncertaintyModel euclid(table, deployment, 1.0);
  const UncertaintyModel partition_mode(table, deployment, 1.0, &checker,
                                        TopologyMode::kPartition);
  const UncertaintyModel exact_mode(table, deployment, 1.0, &checker,
                                    TopologyMode::kExact);

  const SnapshotState state = ResolveSnapshotStateAt(table, 1, budget);
  ASSERT_FALSE(state.active());
  const Region ur_euclid = euclid.Snapshot(state, budget);
  const Region ur_partition = partition_mode.Snapshot(state, budget);
  const Region ur_exact = exact_mode.Snapshot(state, budget);

  EXPECT_TRUE(ur_euclid.Contains(target));      // the documented leak
  EXPECT_FALSE(ur_partition.Contains(target));  // pruned (paper's check)
  EXPECT_FALSE(ur_exact.Contains(target));      // pruned (point-wise)

  // Same-floor points near the device survive the check.
  const Point same_floor{dev_pos.x, dev_pos.y - 5.0};
  EXPECT_TRUE(ur_euclid.Contains(same_floor));
  EXPECT_TRUE(ur_partition.Contains(same_floor));
}

TEST(MultiFloorPipelineTest, TwoFloorQueriesEndToEnd) {
  const BuiltPlan built = BuildMultiFloorOfficePlan(SmallTwoFloor());
  const DoorGraph graph(built.plan);
  Deployment deployment;
  for (const Door& door : built.plan.doors()) {
    bool conflict = false;
    for (const Device& d : deployment.devices()) {
      conflict |= Distance(d.range.center, door.position) <= 3.1;
    }
    if (!conflict) deployment.AddDevice(Circle{door.position, 1.5});
  }
  deployment.BuildIndex();
  ASSERT_TRUE(deployment.RangesDisjoint());

  // Objects walk across both floors.
  const RandomWaypointModel model(built, graph);
  const ProximityDetector detector(deployment);
  ObjectTrackingTable table;
  std::vector<TrackingRecord> records;
  int cross_floor_objects = 0;
  for (ObjectId o = 0; o < 10; ++o) {
    Rng rng(6000 + static_cast<uint64_t>(o));
    WaypointOptions options;
    options.duration = 600.0;
    options.max_pause = 60.0;
    const Trajectory traj = model.Generate(o, options, rng);
    // Count objects that visit both floors.
    bool on0 = false;
    bool on1 = false;
    for (const TrajectoryPoint& p : traj.points) {
      const PartitionId part = built.plan.PartitionAt(p.position);
      if (part == kInvalidPartition) continue;
      (built.FloorOf(part) == 0 ? on0 : on1) = true;
    }
    cross_floor_objects += (on0 && on1) ? 1 : 0;
    records.clear();
    detector.DetectRecords(traj, DetectionOptions{}, &records);
    for (const TrackingRecord& r : records) table.Append(r);
  }
  EXPECT_GT(cross_floor_objects, 0);  // the stairs are actually used
  ASSERT_TRUE(table.Finalize().ok());

  // POIs: one room per floor.
  PoiSet pois;
  PoiId next = 0;
  for (PartitionId id : built.room_ids) {
    const Box b = built.plan.partition(id).shape.Bounds();
    pois.push_back(Poi{next++, built.plan.partition(id).name,
                       Polygon::FromBox(b)});
  }

  EngineConfig config;
  config.vmax = 1.1;
  config.topology = TopologyMode::kPartition;  // required for multi-floor
  const QueryEngine engine(built.plan, graph, deployment, table, pois,
                           config);
  const auto iter = engine.IntervalTopK(100.0, 500.0, 6,
                                        Algorithm::kIterative);
  const auto join = engine.IntervalTopK(100.0, 500.0, 6, Algorithm::kJoin);
  ASSERT_EQ(iter.size(), join.size());
  for (size_t i = 0; i < iter.size(); ++i) {
    EXPECT_EQ(iter[i].poi, join[i].poi);
    EXPECT_NEAR(iter[i].flow, join[i].flow, 1e-9);
  }
}

TEST(MultiFloorPlanTest, ThreeFloorsChainThroughBothStairs) {
  MultiFloorConfig config = SmallTwoFloor();
  config.num_floors = 3;
  const BuiltPlan built = BuildMultiFloorOfficePlan(config);
  EXPECT_TRUE(built.plan.Validate().ok());
  EXPECT_EQ(built.room_ids.size(), 18u);
  // Two staircases.
  int stairs = 0;
  for (const Partition& part : built.plan.partitions()) {
    stairs += part.name.rfind("stairs_", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(stairs, 2);
  // Floor 0 to floor 2 distance includes both stair lengths.
  const DoorGraph graph(built.plan);
  const IndoorDistance dist(built.plan, graph);
  const Point f0 = built.plan.partition(built.hallway_ids[0])
                       .shape.Centroid();
  // The last spine added belongs to floor 2.
  Point f2{0, 0};
  for (const Partition& part : built.plan.partitions()) {
    if (part.name == "f2_spine") f2 = part.shape.Centroid();
  }
  const double d = dist.Between(f0, f2);
  ASSERT_FALSE(std::isinf(d));
  EXPECT_GT(d, 2.0 * config.stair_length);
}

}  // namespace
}  // namespace indoorflow
