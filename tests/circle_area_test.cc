// Tests for the exact circle-rectangle intersection area, including a
// differential check against the adaptive quadtree integrator.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/geometry/area_integrator.h"
#include "src/geometry/circle_area.h"
#include "src/geometry/region.h"

namespace indoorflow {
namespace {

TEST(CircleBoxAreaTest, ContainmentCases) {
  const Circle c{{0, 0}, 2.0};
  // Box contains the whole circle.
  EXPECT_NEAR(CircleBoxIntersectionArea(c, Box{-5, -5, 5, 5}), c.Area(),
              1e-12);
  // Circle contains the whole box.
  EXPECT_NEAR(CircleBoxIntersectionArea(c, Box{-0.5, -0.5, 0.5, 0.5}), 1.0,
              1e-12);
  // Disjoint.
  EXPECT_DOUBLE_EQ(CircleBoxIntersectionArea(c, Box{5, 5, 6, 6}), 0.0);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(CircleBoxIntersectionArea(c, Box{}), 0.0);
  EXPECT_DOUBLE_EQ(
      CircleBoxIntersectionArea(Circle{{0, 0}, 0.0}, Box{-1, -1, 1, 1}),
      0.0);
}

TEST(CircleBoxAreaTest, HalfAndQuarterDisk) {
  const Circle c{{0, 0}, 3.0};
  // Half-plane-like boxes.
  EXPECT_NEAR(CircleBoxIntersectionArea(c, Box{0, -10, 10, 10}),
              c.Area() / 2.0, 1e-12);
  EXPECT_NEAR(CircleBoxIntersectionArea(c, Box{-10, 0, 10, 10}),
              c.Area() / 2.0, 1e-12);
  // Quarter disk.
  EXPECT_NEAR(CircleBoxIntersectionArea(c, Box{0, 0, 10, 10}),
              c.Area() / 4.0, 1e-12);
}

TEST(CircleBoxAreaTest, CircularSegment) {
  // Box cutting a segment at distance d from the center: area =
  // r^2 acos(d/r) - d sqrt(r^2 - d^2).
  const double r = 2.0;
  const double d = 0.7;
  const Circle c{{0, 0}, r};
  const double expected =
      r * r * std::acos(d / r) - d * std::sqrt(r * r - d * d);
  EXPECT_NEAR(CircleBoxIntersectionArea(c, Box{d, -10, 10, 10}), expected,
              1e-12);
}

TEST(CircleBoxAreaTest, TranslationInvariance) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const Circle c{{0, 0}, rng.Uniform(0.5, 4.0)};
    const double x = rng.Uniform(-3, 3);
    const double y = rng.Uniform(-3, 3);
    const Box box{x, y, x + rng.Uniform(0.2, 5), y + rng.Uniform(0.2, 5)};
    const double base = CircleBoxIntersectionArea(c, box);
    const Point shift{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    const Circle moved{c.center + shift, c.radius};
    const Box moved_box{box.min_x + shift.x, box.min_y + shift.y,
                        box.max_x + shift.x, box.max_y + shift.y};
    EXPECT_NEAR(CircleBoxIntersectionArea(moved, moved_box), base, 1e-9);
  }
}

TEST(CircleBoxAreaTest, AdditiveOverSplitBoxes) {
  Rng rng(15);
  for (int i = 0; i < 50; ++i) {
    const Circle c{{rng.Uniform(-2, 2), rng.Uniform(-2, 2)},
                   rng.Uniform(0.5, 3.0)};
    const Box box{-2, -2, 3, 3};
    const double split_x = rng.Uniform(box.min_x, box.max_x);
    const Box left{box.min_x, box.min_y, split_x, box.max_y};
    const Box right{split_x, box.min_y, box.max_x, box.max_y};
    EXPECT_NEAR(CircleBoxIntersectionArea(c, box),
                CircleBoxIntersectionArea(c, left) +
                    CircleBoxIntersectionArea(c, right),
                1e-10);
  }
}

TEST(CircleBoxAreaTest, MatchesQuadtreeIntegrator) {
  Rng rng(22);
  for (int i = 0; i < 30; ++i) {
    const Circle c{{rng.Uniform(-5, 5), rng.Uniform(-5, 5)},
                   rng.Uniform(0.5, 4.0)};
    const double x = rng.Uniform(-6, 4);
    const double y = rng.Uniform(-6, 4);
    const Box box{x, y, x + rng.Uniform(0.5, 6), y + rng.Uniform(0.5, 6)};
    const double exact = CircleBoxIntersectionArea(c, box);
    AreaOptions options;
    options.abs_tolerance = 0.005;
    options.max_depth = 18;
    const AreaEstimate est = AreaOfIntersection(
        Region::Make(c), Region::Make(box), options);
    EXPECT_NEAR(est.area, exact, est.error_bound + 1e-9) << "trial " << i;
  }
}

TEST(CirclePolygonAreaTest, AgreesWithBoxFormulaOnRectangles) {
  Rng rng(31);
  for (int i = 0; i < 60; ++i) {
    const Circle c{{rng.Uniform(-4, 4), rng.Uniform(-4, 4)},
                   rng.Uniform(0.5, 4.0)};
    const double x = rng.Uniform(-5, 3);
    const double y = rng.Uniform(-5, 3);
    const Box box{x, y, x + rng.Uniform(0.5, 6), y + rng.Uniform(0.5, 6)};
    EXPECT_NEAR(CirclePolygonIntersectionArea(c, Polygon::FromBox(box)),
                CircleBoxIntersectionArea(c, box), 1e-9)
        << "trial " << i;
  }
}

TEST(CirclePolygonAreaTest, ClockwisePolygonsHandled) {
  const Circle c{{2, 2}, 1.5};
  Polygon ccw = Polygon::Rectangle(0, 0, 4, 4);
  Polygon cw({{0, 0}, {0, 4}, {4, 4}, {4, 0}});
  EXPECT_LT(cw.SignedArea(), 0.0);
  EXPECT_NEAR(CirclePolygonIntersectionArea(c, cw),
              CirclePolygonIntersectionArea(c, ccw), 1e-12);
}

TEST(CirclePolygonAreaTest, TriangleCases) {
  // Circle fully inside a big triangle.
  const Circle inside{{2, 1.2}, 0.5};
  const Polygon tri({{0, 0}, {8, 0}, {0, 8}});
  EXPECT_NEAR(CirclePolygonIntersectionArea(inside, tri), inside.Area(),
              1e-12);
  // Triangle fully inside a big circle.
  const Circle big{{2, 2}, 50.0};
  EXPECT_NEAR(CirclePolygonIntersectionArea(big, tri), tri.Area(), 1e-9);
  // Disjoint.
  const Circle far{{100, 100}, 1.0};
  EXPECT_DOUBLE_EQ(CirclePolygonIntersectionArea(far, tri), 0.0);
}

TEST(CirclePolygonAreaTest, NonConvexPolygon) {
  // L-shape with a circle centered in its notch: compare against the
  // integrator.
  const Polygon ell({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  Rng rng(44);
  for (int i = 0; i < 30; ++i) {
    const Circle c{{rng.Uniform(-1, 5), rng.Uniform(-1, 5)},
                   rng.Uniform(0.4, 3.0)};
    const double exact = CirclePolygonIntersectionArea(c, ell);
    AreaOptions options;
    options.abs_tolerance = 0.004;
    options.max_depth = 18;
    const AreaEstimate est = AreaOfIntersection(
        Region::Make(c), Region::Make(ell), options);
    EXPECT_NEAR(est.area, exact, est.error_bound + 1e-9) << "trial " << i;
  }
}

TEST(CirclePolygonAreaTest, RingPolygonArea) {
  const Ring ring{{2, 2}, 1.0, 2.0};
  // A huge polygon captures the full annulus.
  const Polygon all = Polygon::Rectangle(-10, -10, 14, 14);
  EXPECT_NEAR(RingPolygonIntersectionArea(ring, all), ring.Area(), 1e-9);
  // Quarter-plane through the center: a quarter of the annulus.
  const Polygon quarter = Polygon::Rectangle(2, 2, 14, 14);
  EXPECT_NEAR(RingPolygonIntersectionArea(ring, quarter),
              ring.Area() / 4.0, 1e-9);
  // Entirely inside the hole.
  const Polygon hole = Polygon::Rectangle(1.6, 1.6, 2.4, 2.4);
  EXPECT_NEAR(RingPolygonIntersectionArea(ring, hole), 0.0, 1e-12);
}

}  // namespace
}  // namespace indoorflow
