// Tests for CSV import/export of tracking data and deployments.

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/sim/generators.h"
#include "src/tracking/io.h"

namespace indoorflow {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(ReadingsCsvTest, RoundTrip) {
  const std::vector<RawReading> readings = {
      {1, 2, 0.5}, {1, 2, 1.5}, {3, 0, 10.25}};
  const std::string path = TempPath("readings_roundtrip.csv");
  ASSERT_TRUE(WriteReadingsCsv(readings, path).ok());
  auto loaded = ReadReadingsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), readings.size());
  for (size_t i = 0; i < readings.size(); ++i) {
    EXPECT_EQ((*loaded)[i].object_id, readings[i].object_id);
    EXPECT_EQ((*loaded)[i].device_id, readings[i].device_id);
    EXPECT_DOUBLE_EQ((*loaded)[i].t, readings[i].t);
  }
}

TEST(ReadingsCsvTest, MissingFile) {
  EXPECT_EQ(ReadReadingsCsv(TempPath("no_such_file.csv")).status().code(),
            StatusCode::kNotFound);
}

TEST(ReadingsCsvTest, BadHeader) {
  const std::string path = TempPath("bad_header.csv");
  WriteFile(path, "object,device,time\n1,2,3\n");
  const auto result = ReadReadingsCsv(path);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReadingsCsvTest, BadFieldCountReportsLine) {
  const std::string path = TempPath("bad_fields.csv");
  WriteFile(path, "object_id,device_id,t\n1,2,3\n4,5\n");
  const auto result = ReadReadingsCsv(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

TEST(ReadingsCsvTest, BadNumberReportsLine) {
  const std::string path = TempPath("bad_number.csv");
  WriteFile(path, "object_id,device_id,t\n1,2,oops\n");
  const auto result = ReadReadingsCsv(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("oops"), std::string::npos);
}

TEST(ReadingsCsvTest, ToleratesCrLfAndBlankLines) {
  const std::string path = TempPath("crlf.csv");
  WriteFile(path, "object_id,device_id,t\r\n1,2,3.5\r\n\r\n");
  const auto result = ReadReadingsCsv(path);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_DOUBLE_EQ((*result)[0].t, 3.5);
}

TEST(OttCsvTest, RoundTripPreservesChains) {
  ObjectTrackingTable table;
  table.Append({1, 10, 0.0, 5.5});
  table.Append({1, 11, 8.0, 9.0});
  table.Append({2, 10, 1.0, 2.0});
  ASSERT_TRUE(table.Finalize().ok());
  const std::string path = TempPath("ott_roundtrip.csv");
  ASSERT_TRUE(WriteOttCsv(table, path).ok());
  auto loaded = ReadOttCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->finalized());
  ASSERT_EQ(loaded->size(), table.size());
  for (ObjectId o : table.objects()) {
    const auto original = table.ChainOf(o);
    const auto restored = loaded->ChainOf(o);
    ASSERT_EQ(original.size(), restored.size()) << "object " << o;
    for (size_t i = 0; i < original.size(); ++i) {
      const TrackingRecord& a = table.record(original[i]);
      const TrackingRecord& b = loaded->record(restored[i]);
      EXPECT_EQ(a.device_id, b.device_id);
      EXPECT_DOUBLE_EQ(a.ts, b.ts);
      EXPECT_DOUBLE_EQ(a.te, b.te);
    }
  }
}

TEST(OttCsvTest, RejectsOverlappingRecords) {
  const std::string path = TempPath("ott_overlap.csv");
  WriteFile(path,
            "object_id,device_id,ts,te\n"
            "1,10,0,5\n"
            "1,11,3,8\n");
  const auto result = ReadOttCsv(path);
  EXPECT_FALSE(result.ok());
}

TEST(OttCsvTest, GeneratedDatasetRoundTrip) {
  OfficeDatasetConfig config;
  config.num_objects = 10;
  config.duration = 300.0;
  const Dataset ds = GenerateOfficeDataset(config);
  const std::string path = TempPath("ott_generated.csv");
  ASSERT_TRUE(WriteOttCsv(ds.ott, path).ok());
  auto loaded = ReadOttCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), ds.ott.size());
  EXPECT_EQ(loaded->objects().size(), ds.ott.objects().size());
  EXPECT_DOUBLE_EQ(loaded->min_time(), ds.ott.min_time());
  EXPECT_DOUBLE_EQ(loaded->max_time(), ds.ott.max_time());
}

TEST(DeploymentCsvTest, RoundTrip) {
  Deployment deployment;
  deployment.AddDevice(Circle{{1.5, 2.5}, 1.0});
  deployment.AddDevice(Circle{{10.0, -3.0}, 2.5});
  deployment.BuildIndex();
  const std::string path = TempPath("deployment_roundtrip.csv");
  ASSERT_TRUE(WriteDeploymentCsv(deployment, path).ok());
  auto loaded = ReadDeploymentCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    const Device& a = deployment.device(static_cast<DeviceId>(i));
    const Device& b = loaded->device(static_cast<DeviceId>(i));
    EXPECT_EQ(a.range.center, b.range.center);
    EXPECT_DOUBLE_EQ(a.range.radius, b.range.radius);
  }
  // Loaded deployment is indexed and usable immediately.
  std::vector<DeviceId> near;
  loaded->DevicesNear({1.5, 2.5}, 0.0, &near);
  EXPECT_EQ(near.size(), 1u);
}

TEST(DeploymentCsvTest, RejectsNonDenseIds) {
  const std::string path = TempPath("deployment_sparse.csv");
  WriteFile(path, "device_id,x,y,radius\n0,0,0,1\n2,5,5,1\n");
  EXPECT_FALSE(ReadDeploymentCsv(path).ok());
}

TEST(DeploymentCsvTest, RejectsNonPositiveRadius) {
  const std::string path = TempPath("deployment_radius.csv");
  WriteFile(path, "device_id,x,y,radius\n0,0,0,0\n");
  EXPECT_FALSE(ReadDeploymentCsv(path).ok());
}

// End-to-end: export a generated dataset, re-import it, and verify queries
// produce identical results — the external-data workflow from README.
TEST(CsvPipelineTest, QueriesMatchAfterRoundTrip) {
  OfficeDatasetConfig config;
  config.num_objects = 15;
  config.duration = 600.0;
  const Dataset ds = GenerateOfficeDataset(config);

  const std::string ott_path = TempPath("pipeline_ott.csv");
  const std::string dep_path = TempPath("pipeline_dep.csv");
  ASSERT_TRUE(WriteOttCsv(ds.ott, ott_path).ok());
  ASSERT_TRUE(WriteDeploymentCsv(ds.deployment, dep_path).ok());
  auto table = ReadOttCsv(ott_path);
  auto deployment = ReadDeploymentCsv(dep_path);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(deployment.ok());

  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kOff;
  engine_config.vmax = ds.vmax;
  const QueryEngine original(ds.built.plan, *ds.door_graph, ds.deployment,
                             ds.ott, ds.pois, engine_config);
  const QueryEngine reloaded(ds.built.plan, *ds.door_graph, *deployment,
                             *table, ds.pois, engine_config);
  const auto a = original.SnapshotTopK(300.0, 10, Algorithm::kIterative);
  const auto b = reloaded.SnapshotTopK(300.0, 10, Algorithm::kIterative);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].poi, b[i].poi);
    EXPECT_NEAR(a[i].flow, b[i].flow, 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Binary OTT format.

TEST(OttBinaryTest, RoundTripExactBits) {
  ObjectTrackingTable table;
  table.Append({7, 0, 100.125, 200.375});
  table.Append({7, 1, 300.0, 400.0});
  table.Append({9, 2, 0.1, 0.30000000000000004});  // not representable short
  ASSERT_TRUE(table.Finalize().ok());
  const std::string path = TempPath("ott.bin");
  ASSERT_TRUE(WriteOttBinary(table, path).ok());
  auto loaded = ReadOttBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), table.size());
  EXPECT_FALSE(loaded->has_overlaps());
  for (size_t i = 0; i < table.size(); ++i) {
    const TrackingRecord& a = table.record(static_cast<RecordIndex>(i));
    const TrackingRecord& b = loaded->record(static_cast<RecordIndex>(i));
    EXPECT_EQ(a.object_id, b.object_id);
    EXPECT_EQ(a.device_id, b.device_id);
    // Bit-exact: doubles survive unchanged (unlike decimal CSV).
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.te, b.te);
  }
}

TEST(OttBinaryTest, PreservesOverlapMode) {
  ObjectTrackingTable table;
  table.Append({1, 0, 0.0, 100.0});
  table.Append({1, 1, 50.0, 150.0});  // overlapping records
  ASSERT_TRUE(table.Finalize(/*allow_overlap=*/true).ok());
  ASSERT_TRUE(table.has_overlaps());
  const std::string path = TempPath("ott_overlap.bin");
  ASSERT_TRUE(WriteOttBinary(table, path).ok());
  auto loaded = ReadOttBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->has_overlaps());
}

TEST(OttBinaryTest, EmptyTableRoundTrips) {
  ObjectTrackingTable table;
  ASSERT_TRUE(table.Finalize().ok());
  const std::string path = TempPath("ott_empty.bin");
  ASSERT_TRUE(WriteOttBinary(table, path).ok());
  auto loaded = ReadOttBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST(OttBinaryTest, RejectsUnfinalizedTable) {
  ObjectTrackingTable table;
  table.Append({1, 0, 0.0, 10.0});
  EXPECT_FALSE(WriteOttBinary(table, TempPath("nope.bin")).ok());
}

TEST(OttBinaryTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad_magic.bin");
  WriteFile(path, "not a binary ott, definitely long enough to parse");
  const auto result = ReadOttBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("not a binary OTT"),
            std::string::npos);
}

TEST(OttBinaryTest, RejectsTruncation) {
  ObjectTrackingTable table;
  table.Append({7, 0, 100.0, 200.0});
  table.Append({7, 1, 300.0, 400.0});
  ASSERT_TRUE(table.Finalize().ok());
  const std::string path = TempPath("ott_trunc.bin");
  ASSERT_TRUE(WriteOttBinary(table, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  // Drop the final 10 bytes (half the trailer plus part of a record).
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() - 10));
  out.close();
  const auto result = ReadOttBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("size mismatch"),
            std::string::npos);
}

TEST(OttBinaryTest, RejectsCorruption) {
  ObjectTrackingTable table;
  table.Append({7, 0, 100.0, 200.0});
  ASSERT_TRUE(table.Finalize().ok());
  const std::string path = TempPath("ott_corrupt.bin");
  ASSERT_TRUE(WriteOttBinary(table, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data[20] = static_cast<char>(data[20] ^ 0x40);  // flip a record bit
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  const auto result = ReadOttBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("checksum"), std::string::npos);
}

TEST(OttBinaryTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadOttBinary(TempPath("missing.bin")).status().code(),
            StatusCode::kNotFound);
}

TEST(OttBinaryTest, AgreesWithCsvOnGeneratedData) {
  OfficeDatasetConfig config;
  config.num_objects = 20;
  config.duration = 900.0;
  const Dataset ds = GenerateOfficeDataset(config);
  const std::string bin_path = TempPath("ott_gen.bin");
  const std::string csv_path = TempPath("ott_gen.csv");
  ASSERT_TRUE(WriteOttBinary(ds.ott, bin_path).ok());
  ASSERT_TRUE(WriteOttCsv(ds.ott, csv_path).ok());
  auto bin = ReadOttBinary(bin_path);
  auto csv = ReadOttCsv(csv_path);
  ASSERT_TRUE(bin.ok());
  ASSERT_TRUE(csv.ok());
  ASSERT_EQ(bin->size(), csv->size());
  for (size_t i = 0; i < bin->size(); ++i) {
    const TrackingRecord& a = bin->record(static_cast<RecordIndex>(i));
    const TrackingRecord& b = csv->record(static_cast<RecordIndex>(i));
    EXPECT_EQ(a.object_id, b.object_id);
    EXPECT_EQ(a.device_id, b.device_id);
    EXPECT_DOUBLE_EQ(a.ts, b.ts);
    EXPECT_DOUBLE_EQ(a.te, b.te);
  }
}

}  // namespace
}  // namespace indoorflow
