// Lock-rank discipline tests (src/common/mutex.h).
//
// The death tests prove the runtime validator actually fires: acquiring
// against the descending-rank order, or re-acquiring a held mutex, must
// abort with a diagnostic naming both ranks. They skip themselves in
// builds where the validator is compiled out (Release without sanitizers).
//
// The *Concurrency* suite stress-nests the sanctioned engine -> stream_shard ->
// urcache -> trace -> metrics -> log chain from many threads at once; the
// TSan CI job picks it up via `ctest -R "Concurrency"` and proves the
// discipline
// holds under real interleavings.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/mutex.h"

namespace indoorflow {
namespace {

using lock_rank_internal::ValidatorEnabled;

#define SKIP_WITHOUT_VALIDATOR()                                       \
  if (!ValidatorEnabled()) {                                           \
    GTEST_SKIP() << "lock-rank validator compiled out (Release build " \
                    "without sanitizers)";                             \
  }

TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  SKIP_WITHOUT_VALIDATOR();
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex log_mu(LockRank::kLog);
        Mutex engine_mu(LockRank::kEngine);
        MutexLock hold_log(log_mu);
        MutexLock hold_engine(engine_mu);  // ascends: rank 8 while holding 0
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, EqualRankNestingAborts) {
  SKIP_WITHOUT_VALIDATOR();
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex shard_a(LockRank::kUrCache);
        Mutex shard_b(LockRank::kUrCache);
        MutexLock hold_a(shard_a);
        MutexLock hold_b(shard_b);  // same rank: shards must never nest
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, RecursiveAcquisitionAborts) {
  SKIP_WITHOUT_VALIDATOR();
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kStreamShard);
        mu.Lock();
        mu.Lock();  // Mutex is non-recursive
      },
      "lock-rank violation");
}

TEST(LockRankTest, DescendingAcquisitionIsSanctioned) {
  // The full ladder, top to bottom, on one thread: every step descends,
  // so the validator must stay silent.
  Mutex expo_mu(LockRank::kExpo);
  Mutex engine_mu(LockRank::kEngine);
  Mutex profile_mu(LockRank::kProfileRecorder);
  Mutex stream_mu(LockRank::kStreamShard);
  Mutex cache_mu(LockRank::kUrCache);
  Mutex rtree_mu(LockRank::kRtree);
  Mutex executor_mu(LockRank::kExecutor);
  Mutex trace_mu(LockRank::kTrace);
  Mutex metrics_mu(LockRank::kMetrics);
  Mutex log_mu(LockRank::kLog);
  MutexLock l0(expo_mu);
  MutexLock l1(engine_mu);
  MutexLock l2(profile_mu);
  MutexLock l3(stream_mu);
  MutexLock l4(cache_mu);
  MutexLock l5(rtree_mu);
  MutexLock l6(executor_mu);
  MutexLock l7(trace_mu);
  MutexLock l8(metrics_mu);
  MutexLock l9(log_mu);
  SUCCEED();
}

TEST(LockRankTest, ReleaseThenReacquireAtHigherRankIsSanctioned) {
  // The order constrains what is *held*, not the sequence of operations:
  // after releasing the low-rank lock the thread may climb again.
  Mutex stream_mu(LockRank::kStreamShard);
  Mutex log_mu(LockRank::kLog);
  { MutexLock lock(log_mu); }
  { MutexLock lock(stream_mu); }
  { MutexLock lock(log_mu); }
  SUCCEED();
}

TEST(LockRankTest, RankAccessorAndNames) {
  Mutex mu(LockRank::kRtree);
  EXPECT_EQ(mu.rank(), LockRank::kRtree);
  EXPECT_STREQ(LockRankName(LockRank::kLog), "log");
  EXPECT_STREQ(LockRankName(LockRank::kTrace), "trace");
  EXPECT_STREQ(LockRankName(LockRank::kExpo), "expo");
}

// Shared chain nested in the sanctioned engine -> stream_shard -> urcache ->
// trace -> metrics -> log order by every worker at once (the trace rung is
// the span-record-then-sink descent in src/common/trace.cc). TSan (and the
// validator) watch the interleavings; any ordering bug here is a deadlock
// candidate in the real engine -> stream-shard -> cache call path.
TEST(LockRankConcurrencyTest, SanctionedNestingUnderContention) {
  Mutex engine_mu(LockRank::kEngine);
  Mutex stream_mu(LockRank::kStreamShard);
  Mutex cache_mu(LockRank::kUrCache);
  Mutex trace_mu(LockRank::kTrace);
  Mutex metrics_mu(LockRank::kMetrics);
  Mutex log_mu(LockRank::kLog);
  int shared = 0;

  constexpr int kThreads = 8;
  constexpr int kIterations = 400;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        MutexLock engine_lock(engine_mu);
        MutexLock stream_lock(stream_mu);
        MutexLock cache_lock(cache_mu);
        MutexLock trace_lock(trace_mu);
        MutexLock metrics_lock(metrics_mu);
        MutexLock log_lock(log_mu);
        ++shared;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(shared, kThreads * kIterations);
}

}  // namespace
}  // namespace indoorflow
