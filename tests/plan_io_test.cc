// Tests for floor-plan / POI text serialization and concurrent engine use.

#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/indoor/plan_io.h"
#include "src/sim/generators.h"

namespace indoorflow {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

void ExpectPlansEqual(const FloorPlan& a, const FloorPlan& b) {
  ASSERT_EQ(a.partitions().size(), b.partitions().size());
  for (size_t i = 0; i < a.partitions().size(); ++i) {
    const Partition& pa = a.partitions()[i];
    const Partition& pb = b.partitions()[i];
    EXPECT_EQ(pa.name, pb.name);
    ASSERT_EQ(pa.shape.size(), pb.shape.size());
    for (size_t v = 0; v < pa.shape.size(); ++v) {
      EXPECT_EQ(pa.shape.vertex(v), pb.shape.vertex(v)) << pa.name;
    }
  }
  ASSERT_EQ(a.doors().size(), b.doors().size());
  for (size_t i = 0; i < a.doors().size(); ++i) {
    EXPECT_EQ(a.doors()[i].position, b.doors()[i].position);
    EXPECT_EQ(a.doors()[i].partition_a, b.doors()[i].partition_a);
    EXPECT_EQ(a.doors()[i].partition_b, b.doors()[i].partition_b);
  }
}

class PlanRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PlanRoundTrip, PreservesStructure) {
  BuiltPlan built;
  switch (GetParam()) {
    case 0:
      built = BuildTinyPlan();
      break;
    case 1:
      built = BuildOfficePlan({});
      break;
    case 2:
      built = BuildAirportPlan({});
      break;
    case 3:
      built = BuildMallPlan({});
      break;
    default:
      built = BuildMultiFloorOfficePlan({});
      break;
  }
  const std::string path =
      TempPath("plan_" + std::to_string(GetParam()) + ".txt");
  ASSERT_TRUE(WritePlanFile(built.plan, path).ok());
  auto loaded = ReadPlanFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectPlansEqual(built.plan, *loaded);
  EXPECT_TRUE(loaded->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Plans, PlanRoundTrip, ::testing::Range(0, 5));

TEST(PlanIoTest, PoisRoundTrip) {
  const BuiltPlan built = BuildOfficePlan({});
  Rng rng(3);
  const PoiSet pois = GeneratePois(built, 40, rng);
  const std::string path = TempPath("pois_roundtrip.txt");
  ASSERT_TRUE(WritePoisFile(pois, path).ok());
  auto loaded = ReadPoisFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), pois.size());
  for (size_t i = 0; i < pois.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, pois[i].id);
    EXPECT_EQ((*loaded)[i].name, pois[i].name);
    EXPECT_EQ((*loaded)[i].shape.Bounds(), pois[i].shape.Bounds());
    EXPECT_DOUBLE_EQ((*loaded)[i].Area(), pois[i].Area());
  }
}

TEST(PlanIoTest, RejectsMissingFileAndBadHeader) {
  EXPECT_EQ(ReadPlanFile(TempPath("nope.txt")).status().code(),
            StatusCode::kNotFound);
  const std::string path = TempPath("bad_plan.txt");
  WriteFile(path, "something else\n");
  EXPECT_EQ(ReadPlanFile(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PlanIoTest, RejectsMalformedEntities) {
  const std::string header = "# indoorflow plan v1\n";
  const std::string path = TempPath("malformed_plan.txt");
  // Too few vertices.
  WriteFile(path, header + "partition a 0 0 1 1\n");
  EXPECT_FALSE(ReadPlanFile(path).ok());
  // Odd coordinate count.
  WriteFile(path, header + "partition a 0 0 1 0 1\n");
  EXPECT_FALSE(ReadPlanFile(path).ok());
  // Unknown entity.
  WriteFile(path, header + "window 0 0 1 1\n");
  EXPECT_FALSE(ReadPlanFile(path).ok());
  // Door referencing a missing partition.
  WriteFile(path, header + "partition a 0 0 4 0 4 4 0 4\ndoor 2 0 0 5\n");
  EXPECT_FALSE(ReadPlanFile(path).ok());
}

TEST(PlanIoTest, RejectsInvalidLoadedPlan) {
  // Two disconnected partitions parse but fail validation.
  const std::string path = TempPath("disconnected_plan.txt");
  WriteFile(path,
            "# indoorflow plan v1\n"
            "partition a 0 0 4 0 4 4 0 4\n"
            "partition b 10 10 14 10 14 14 10 14\n");
  EXPECT_FALSE(ReadPlanFile(path).ok());
}

TEST(PlanIoTest, CommentsAndCrLfTolerated) {
  const std::string path = TempPath("crlf_plan.txt");
  WriteFile(path,
            "# indoorflow plan v1\r\n"
            "# a comment\r\n"
            "partition a 0 0 4 0 4 4 0 4\r\n");
  auto loaded = ReadPlanFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->partitions().size(), 1u);
}

// Full-dataset reload: queries over the reloaded plan/POIs match the
// original bit for bit.
TEST(PlanIoTest, QueriesMatchAfterFullReload) {
  OfficeDatasetConfig config;
  config.num_objects = 15;
  config.duration = 600.0;
  const Dataset ds = GenerateOfficeDataset(config);
  const std::string plan_path = TempPath("reload_plan.txt");
  const std::string pois_path = TempPath("reload_pois.txt");
  ASSERT_TRUE(WritePlanFile(ds.built.plan, plan_path).ok());
  ASSERT_TRUE(WritePoisFile(ds.pois, pois_path).ok());
  auto plan = ReadPlanFile(plan_path);
  auto pois = ReadPoisFile(pois_path);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(pois.ok());
  const DoorGraph graph(*plan);

  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kPartition;
  engine_config.vmax = ds.vmax;
  const QueryEngine original(ds, engine_config);
  const QueryEngine reloaded(*plan, graph, ds.deployment, ds.ott, *pois,
                             engine_config);
  const auto a = original.SnapshotTopK(300.0, 10, Algorithm::kJoin);
  const auto b = reloaded.SnapshotTopK(300.0, 10, Algorithm::kJoin);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].poi, b[i].poi);
    EXPECT_DOUBLE_EQ(a[i].flow, b[i].flow);
  }
}

// QueryEngine's const interface is safe for concurrent queries: N threads
// issuing mixed queries get exactly the single-threaded results.
TEST(ConcurrencyTest, ParallelQueriesMatchSerial) {
  OfficeDatasetConfig config;
  config.num_objects = 20;
  config.duration = 900.0;
  config.seed = 123;
  const Dataset ds = GenerateOfficeDataset(config);
  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kPartition;
  const QueryEngine engine(ds, engine_config);

  const Timestamp times[4] = {200.0, 400.0, 600.0, 800.0};
  std::vector<std::vector<PoiFlow>> expected(4);
  for (int i = 0; i < 4; ++i) {
    expected[static_cast<size_t>(i)] =
        engine.SnapshotTopK(times[i], 10, Algorithm::kJoin);
  }

  std::vector<std::vector<PoiFlow>> results(8);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int worker = 0; worker < 8; ++worker) {
    threads.emplace_back([&, worker] {
      results[static_cast<size_t>(worker)] = engine.SnapshotTopK(
          times[worker % 4], 10, Algorithm::kJoin);
    });
  }
  for (std::thread& t : threads) t.join();

  for (int worker = 0; worker < 8; ++worker) {
    const auto& got = results[static_cast<size_t>(worker)];
    const auto& want = expected[static_cast<size_t>(worker % 4)];
    ASSERT_EQ(got.size(), want.size()) << "worker " << worker;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].poi, want[i].poi);
      EXPECT_DOUBLE_EQ(got[i].flow, want[i].flow);
    }
  }
}

TEST(ConcurrencyTest, BatchMatchesSerial) {
  OfficeDatasetConfig config;
  config.num_objects = 15;
  config.duration = 600.0;
  config.seed = 5;
  const Dataset ds = GenerateOfficeDataset(config);
  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kPartition;
  const QueryEngine engine(ds, engine_config);

  std::vector<Timestamp> times;
  for (int i = 1; i <= 9; ++i) times.push_back(i * 60.0);
  const auto batch =
      engine.SnapshotTopKBatch(times, 5, Algorithm::kJoin, nullptr, 4);
  ASSERT_EQ(batch.size(), times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    const auto serial = engine.SnapshotTopK(times[i], 5, Algorithm::kJoin);
    ASSERT_EQ(batch[i].size(), serial.size()) << "i=" << i;
    for (size_t j = 0; j < serial.size(); ++j) {
      EXPECT_EQ(batch[i][j].poi, serial[j].poi);
      EXPECT_DOUBLE_EQ(batch[i][j].flow, serial[j].flow);
    }
  }
  // More workers than work, single worker, and empty input all behave.
  EXPECT_EQ(engine.SnapshotTopKBatch({300.0}, 3, Algorithm::kIterative,
                                     nullptr, 16)
                .size(),
            1u);
  EXPECT_EQ(engine.SnapshotTopKBatch({300.0, 360.0}, 3,
                                     Algorithm::kIterative, nullptr, 1)
                .size(),
            2u);
  EXPECT_TRUE(
      engine.SnapshotTopKBatch({}, 3, Algorithm::kIterative).empty());
}

}  // namespace
}  // namespace indoorflow
