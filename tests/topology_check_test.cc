// Tests for the indoor topology check: reachability predicates, their
// conservativeness, and the paper's Figure 8 exclusion scenarios.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/topology_check.h"
#include "src/core/tracking_state.h"
#include "src/core/uncertainty.h"
#include "src/index/artree.h"
#include "src/indoor/plan_builders.h"

namespace indoorflow {
namespace {

// TinyPlan: hallway [0,20]x[0,4]; room_a [0,10]x[4,12] (door at (5,4));
// room_b [10,20]x[4,12] (door at (15,4)).
class TopologyFixture : public ::testing::Test {
 protected:
  TopologyFixture() : built_(BuildTinyPlan()), graph_(built_.plan) {}

  Deployment deployment_;
  BuiltPlan built_;
  DoorGraph graph_;
};

TEST_F(TopologyFixture, IndoorDistanceFromDevice) {
  deployment_.AddDevice(Circle{{5, 4}, 0.5});  // at room_a's door
  deployment_.BuildIndex();
  const TopologyChecker checker(built_.plan, graph_, deployment_);
  // Same partitions: Euclidean.
  EXPECT_DOUBLE_EQ(checker.IndoorDistanceFrom(0, {5, 2}), 2.0);
  EXPECT_DOUBLE_EQ(checker.IndoorDistanceFrom(0, {5, 6}), 2.0);
  // room_b requires the hallway + door (15,4): 10 + 2 = 12.
  EXPECT_DOUBLE_EQ(checker.IndoorDistanceFrom(0, {15, 6}), 12.0);
  // Outside the plan: unreachable.
  EXPECT_TRUE(std::isinf(checker.IndoorDistanceFrom(0, {100, 100})));
}

TEST_F(TopologyFixture, ReachableFromRespectsWalls) {
  deployment_.AddDevice(Circle{{5, 4}, 0.5});
  deployment_.BuildIndex();
  const TopologyChecker checker(built_.plan, graph_, deployment_);
  const Region reach = checker.ReachableFrom(0, 3.0);  // limit 3.5m
  EXPECT_TRUE(reach.Contains({5, 2}));    // hallway, 2m
  EXPECT_TRUE(reach.Contains({5, 6}));    // room_a, 2m
  EXPECT_TRUE(reach.Contains({8, 5}));    // room_a, ~3.16m
  EXPECT_FALSE(reach.Contains({8.2, 2})); // hallway, ~3.77m
  EXPECT_FALSE(reach.Contains({15, 6}));  // room_b, 12m
  EXPECT_FALSE(reach.Contains({5, 4.1 + 3.5}));  // just past the limit
}

TEST_F(TopologyFixture, ReachableBridgePrunesAcrossWalls) {
  deployment_.AddDevice(Circle{{5, 4}, 0.5});   // door of room_a
  deployment_.AddDevice(Circle{{15, 4}, 0.5});  // door of room_b
  deployment_.BuildIndex();
  const TopologyChecker checker(built_.plan, graph_, deployment_);
  // Travel budget 10m between the devices (limit 11 including radii).
  const Region bridge = checker.ReachableBridge(0, 1, 10.0);
  EXPECT_TRUE(bridge.Contains({10, 2}));  // hallway midpoint: ~5.4 + ~5.4
  EXPECT_TRUE(bridge.Contains({10, 4}));
  // Deep room corners: indoor detour exceeds the budget even though the
  // Euclidean sum would not.
  const Point deep{5, 10};  // room_a: 6 from dev0, 6 + 10 via doors to dev1
  EXPECT_FALSE(bridge.Contains(deep));
  // Outside every partition.
  EXPECT_FALSE(bridge.Contains({10, 20}));
}

TEST_F(TopologyFixture, ClassifyIsConservative) {
  deployment_.AddDevice(Circle{{5, 4}, 0.5});
  deployment_.AddDevice(Circle{{15, 4}, 0.5});
  deployment_.BuildIndex();
  const TopologyChecker checker(built_.plan, graph_, deployment_);
  const Region regions[] = {checker.ReachableFrom(0, 6.0),
                            checker.ReachableBridge(0, 1, 12.0)};
  Rng rng(41);
  for (const Region& region : regions) {
    for (int i = 0; i < 300; ++i) {
      const double x0 = rng.Uniform(-2, 22);
      const double y0 = rng.Uniform(-2, 14);
      const Box box{x0, y0, x0 + rng.Uniform(0.05, 4),
                    y0 + rng.Uniform(0.05, 4)};
      const BoxClass cls = region.Classify(box);
      if (cls == BoxClass::kBoundary) continue;
      for (int j = 0; j < 20; ++j) {
        const Point p{rng.Uniform(box.min_x, box.max_x),
                      rng.Uniform(box.min_y, box.max_y)};
        if (cls == BoxClass::kInside) {
          EXPECT_TRUE(region.Contains(p))
              << "(" << p.x << "," << p.y << ")";
        } else {
          EXPECT_FALSE(region.Contains(p))
              << "(" << p.x << "," << p.y << ")";
        }
      }
    }
  }
}

// The paper's Figure 8(a) situation: an inactive object between two hallway
// readers; a room area is inside both Euclidean rings but too far to reach
// through its door.
TEST_F(TopologyFixture, SnapshotTopologyCheckExcludesUnreachableRoomPart) {
  deployment_.AddDevice(Circle{{4, 2}, 1.0});   // hallway, west
  deployment_.AddDevice(Circle{{16, 2}, 1.0});  // hallway, east
  deployment_.BuildIndex();

  ObjectTrackingTable table;
  table.Append({1, 0, 0, 0});    // seen by dev0 at t=0
  table.Append({1, 1, 20, 20});  // seen by dev1 at t=20
  ASSERT_TRUE(table.Finalize().ok());
  const ARTree artree = ARTree::Build(table);

  const TopologyChecker checker(built_.plan, graph_, deployment_);
  const UncertaintyModel euclid(table, deployment_, 1.0);
  const UncertaintyModel indoor(table, deployment_, 1.0, &checker);

  std::vector<ARTreeEntry> entries;
  artree.PointQuery(10.0, &entries);
  ASSERT_EQ(entries.size(), 1u);
  const SnapshotState state = ResolveSnapshotState(table, entries[0], 10.0);
  ASSERT_FALSE(state.active());

  const Region ur_euclid = euclid.Snapshot(state, 10.0);
  const Region ur_indoor = indoor.Snapshot(state, 10.0);

  // (7,6) in room_a: within both rings (5 and ~9.8m Euclidean), but the
  // walk from dev1 through door (5,4) is ~14m > 11m budget.
  const Point unreachable{7, 6};
  EXPECT_TRUE(ur_euclid.Contains(unreachable));
  EXPECT_FALSE(ur_indoor.Contains(unreachable));

  // Hallway midpoint area stays in both.
  const Point hallway_pt{10, 2.5};
  EXPECT_TRUE(ur_euclid.Contains(hallway_pt));
  EXPECT_TRUE(ur_indoor.Contains(hallway_pt));

  // The topology check only ever shrinks the region.
  Rng rng(53);
  const Box domain = ur_euclid.Bounds();
  for (int i = 0; i < 2000; ++i) {
    const Point p{rng.Uniform(domain.min_x, domain.max_x),
                  rng.Uniform(domain.min_y, domain.max_y)};
    if (ur_indoor.Contains(p)) {
      EXPECT_TRUE(ur_euclid.Contains(p));
    }
  }
}

// Figure 8(b) situation for interval queries: rooms bordering the ellipse
// that cannot be entered and exited within the travel budget are excluded.
TEST_F(TopologyFixture, IntervalTopologyCheckShrinksRegion) {
  deployment_.AddDevice(Circle{{4, 2}, 1.0});
  deployment_.AddDevice(Circle{{16, 2}, 1.0});
  deployment_.BuildIndex();

  ObjectTrackingTable table;
  table.Append({1, 0, 0, 5});
  table.Append({1, 1, 19, 24});
  ASSERT_TRUE(table.Finalize().ok());

  const TopologyChecker checker(built_.plan, graph_, deployment_);
  const UncertaintyModel euclid(table, deployment_, 1.0);
  const UncertaintyModel indoor(table, deployment_, 1.0, &checker);

  const IntervalChain chain = RelevantChain(table, 1, 0.0, 24.0);
  ASSERT_EQ(chain.records.size(), 2u);
  const Region ur_euclid = euclid.Interval(chain, 0.0, 24.0);
  const Region ur_indoor = indoor.Interval(chain, 0.0, 24.0);

  // Budget between detections: 14m. In room_a at (7,6): Euclidean sum
  // 4.0 + 8.85 < 14 is inside the ellipse, but the indoor walk dev0 ->
  // door(5,4) -> (7,6) -> door(5,4) -> hallway -> dev1 is ~19m — beyond it.
  const Point room_point{7, 6};
  EXPECT_TRUE(ur_euclid.Contains(room_point));
  EXPECT_FALSE(ur_indoor.Contains(room_point));
  // The hallway path stays in both.
  const Point hallway_pt{10, 2};
  EXPECT_TRUE(ur_euclid.Contains(hallway_pt));
  EXPECT_TRUE(ur_indoor.Contains(hallway_pt));
}

}  // namespace
}  // namespace indoorflow
