// Tests for presence/flow computation and top-k selection.

#include <numbers>

#include <gtest/gtest.h>

#include "src/core/flow.h"

namespace indoorflow {
namespace {

Poi MakePoi(PoiId id, double min_x, double min_y, double max_x,
            double max_y) {
  return Poi{id, "poi", Polygon::Rectangle(min_x, min_y, max_x, max_y)};
}

TEST(PresenceTest, RegionInsidePoi) {
  const Poi poi = MakePoi(0, 0, 0, 10, 8);  // area 80
  const Region poi_region = Region::Make(poi.shape);
  const Circle c{{5, 4}, 1.0};
  const double p = Presence(Region::Make(c), poi.Area(), poi_region, FlowConfig{});
  EXPECT_NEAR(p, c.Area() / 80.0, 0.002);
}

TEST(PresenceTest, RegionCoversPoi) {
  const Poi poi = MakePoi(0, 4, 4, 6, 6);
  const Region poi_region = Region::Make(poi.shape);
  const double p = Presence(Region::Make(Circle{{5, 5}, 10.0}), poi.Area(),
                            poi_region, FlowConfig{});
  EXPECT_NEAR(p, 1.0, 1e-9);
}

TEST(PresenceTest, DisjointIsZero) {
  const Poi poi = MakePoi(0, 0, 0, 2, 2);
  const Region poi_region = Region::Make(poi.shape);
  const double p = Presence(Region::Make(Circle{{50, 50}, 1.0}), poi.Area(),
                            poi_region, FlowConfig{});
  EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(PresenceTest, EmptyRegionIsZero) {
  const Poi poi = MakePoi(0, 0, 0, 2, 2);
  const Region poi_region = Region::Make(poi.shape);
  EXPECT_DOUBLE_EQ(Presence(Region(), poi.Area(), poi_region, FlowConfig{}), 0.0);
}

TEST(PresenceTest, HalfOverlap) {
  const Poi poi = MakePoi(0, 0, 0, 4, 4);
  const Region poi_region = Region::Make(poi.shape);
  const Region half = Region::Make(Polygon::Rectangle(2, 0, 6, 4));
  EXPECT_NEAR(Presence(half, poi.Area(), poi_region, FlowConfig{}), 0.5, 0.01);
}

TEST(PresenceTest, ToleranceScalesWithPoiArea) {
  // A 1% presence tolerance on a large POI must still resolve a small
  // region reasonably (relative to the POI, not the region).
  const Poi poi = MakePoi(0, 0, 0, 100, 100);  // area 10000
  const Region poi_region = Region::Make(poi.shape);
  const Circle c{{50, 50}, 5.0};
  const double p = Presence(Region::Make(c), poi.Area(), poi_region, FlowConfig{});
  EXPECT_NEAR(p, c.Area() / 10000.0, 0.01);
}

TEST(TopKTest, OrdersByFlowDescending) {
  std::vector<PoiFlow> flows = {{0, 1.0}, {1, 3.0}, {2, 2.0}};
  const std::vector<PoiFlow> top = TopK(std::move(flows), 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].poi, 1);
  EXPECT_EQ(top[1].poi, 2);
}

TEST(TopKTest, TieBreaksByPoiId) {
  std::vector<PoiFlow> flows = {{5, 1.0}, {1, 1.0}, {3, 1.0}};
  const std::vector<PoiFlow> top = TopK(std::move(flows), 3);
  EXPECT_EQ(top[0].poi, 1);
  EXPECT_EQ(top[1].poi, 3);
  EXPECT_EQ(top[2].poi, 5);
}

TEST(TopKTest, KLargerThanInput) {
  std::vector<PoiFlow> flows = {{0, 1.0}};
  EXPECT_EQ(TopK(std::move(flows), 10).size(), 1u);
}

TEST(TopKTest, NonPositiveK) {
  std::vector<PoiFlow> flows = {{0, 1.0}};
  EXPECT_TRUE(TopK(flows, 0).empty());
  EXPECT_TRUE(TopK(flows, -3).empty());
}

}  // namespace
}  // namespace indoorflow
