// Tests for the query-serving path (src/serve/): request-parameter
// parsing (flat JSON + query strings), QueryService's Evaluate contract
// (200/400/504 with structured JSON), admission control and the
// shed-vs-admitted metrics accounting, end-to-end HTTP through ExpoServer,
// and a ServeConcurrencyTest suite — cancellation races and concurrent
// overload — that runs under the TSan CI job (suite name matches its
// -R "Concurrency" test filter).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/deadline.h"
#include "src/common/expo_server.h"
#include "src/common/log.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/core/engine.h"
#include "src/core/streaming.h"
#include "src/serve/json.h"
#include "src/serve/query_service.h"
#include "src/sim/generators.h"

namespace indoorflow {
namespace {

// ---------------------------------------------------------------------------
// Request-parameter parsing (src/serve/json.h).

TEST(ServeJsonTest, ParsesFlatObject) {
  const auto result =
      ParseFlatJsonObject("{\"t\": 300, \"algo\": \"join\", \"x\": true, "
                          "\"y\": null}");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const JsonObject& object = *result;
  EXPECT_EQ(object.at("t").type, JsonValue::Type::kNumber);
  EXPECT_EQ(object.at("t").number, 300.0);
  EXPECT_EQ(object.at("algo").type, JsonValue::Type::kString);
  EXPECT_EQ(object.at("algo").string, "join");
  EXPECT_EQ(object.at("x").type, JsonValue::Type::kBool);
  EXPECT_TRUE(object.at("x").boolean);
  EXPECT_EQ(object.at("y").type, JsonValue::Type::kNull);
}

TEST(ServeJsonTest, ParsesEmptyObjectAndEscapes) {
  EXPECT_TRUE(ParseFlatJsonObject("{}").ok());
  const auto result =
      ParseFlatJsonObject("{\"s\": \"a\\\"b\\n\\u0041\"}");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->at("s").string, "a\"b\nA");
}

TEST(ServeJsonTest, RejectsNestedAndMalformed) {
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\": {\"b\": 1}}").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\": [1, 2]}").ok());
  EXPECT_FALSE(ParseFlatJsonObject("not json").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\": }").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\"").ok());
}

TEST(ServeJsonTest, ParsesQueryString) {
  const auto params = DecodeQueryString("t=300&algo=join&x=a%3Ab&y=1+2&z");
  EXPECT_EQ(params.at("t"), "300");
  EXPECT_EQ(params.at("algo"), "join");
  EXPECT_EQ(params.at("x"), "a:b");
  EXPECT_EQ(params.at("y"), "1 2");
  EXPECT_EQ(params.at("z"), "");
  EXPECT_TRUE(DecodeQueryString("").empty());
}

TEST(ServeJsonTest, EscapesJsonStrings) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

// ---------------------------------------------------------------------------
// QueryService fixtures.

class ServeFixture : public ::testing::Test {
 protected:
  ServeFixture() {
    OfficeDatasetConfig config;
    config.num_objects = 20;
    config.duration = 600.0;
    config.seed = 99;
    dataset_ = GenerateOfficeDataset(config);
    engine_ = std::make_unique<QueryEngine>(dataset_, EngineConfig{});
  }

  static HttpRequest Post(const std::string& path,
                          const std::string& body) {
    HttpRequest request;
    request.method = "POST";
    request.path = path;
    request.body = body;
    return request;
  }

  static HttpRequest Get(const std::string& path,
                         const std::string& query) {
    HttpRequest request;
    request.method = "GET";
    request.path = path;
    request.query = query;
    return request;
  }

  /// A StreamingMonitor warmed with the dataset's tracking history (each
  /// record replayed as its boundary readings), for the /query/live route.
  /// `approx` sets the monitor's default evaluation mode (exact unless a
  /// test exercises the sampled-default configuration).
  std::unique_ptr<StreamingMonitor> MakeLiveMonitor(
      const ApproxConfig& approx = ApproxConfig{}) {
    StreamingOptions options;
    options.vmax = dataset_.vmax;
    options.approx = approx;
    options.expiry_seconds = 1e9;  // replayed history never expires
    auto monitor = std::make_unique<StreamingMonitor>(dataset_.deployment,
                                                      dataset_.pois, options);
    std::vector<RawReading> replay;
    for (const ObjectId o : dataset_.ott.objects()) {
      for (const auto index : dataset_.ott.ChainOf(o)) {
        const TrackingRecord& record = dataset_.ott.record(index);
        replay.push_back({o, record.device_id, record.ts});
        replay.push_back({o, record.device_id, record.te});
      }
    }
    EXPECT_TRUE(monitor->IngestBatch(replay).ok());
    return monitor;
  }

  Dataset dataset_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(ServeFixture, EvaluateAnswersSnapshotPost) {
  QueryService service(engine_.get(), QueryServiceOptions{});
  const HttpResponse response = service.Evaluate(
      Post("/query/snapshot", "{\"t\": 300, \"k\": 3}"), MonotonicNowNs());
  EXPECT_EQ(response.code, 200) << response.body;
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response.body.find("\"t\":300"), std::string::npos);
  EXPECT_NE(response.body.find("\"results\":[{\"poi\":"),
            std::string::npos);
}

TEST_F(ServeFixture, EvaluateAnswersGetQueryString) {
  QueryService service(engine_.get(), QueryServiceOptions{});
  const HttpResponse response = service.Evaluate(
      Get("/query/interval", "ts=200&te=400&k=2&metric=density"),
      MonotonicNowNs());
  EXPECT_EQ(response.code, 200) << response.body;
  EXPECT_NE(response.body.find("\"metric\":\"density\""),
            std::string::npos);
}

TEST_F(ServeFixture, EvaluateJoinEndpointTakesEitherForm) {
  QueryService service(engine_.get(), QueryServiceOptions{});
  EXPECT_EQ(service.Evaluate(Post("/query/join", "{\"t\": 300}"),
                             MonotonicNowNs())
                .code,
            200);
  EXPECT_EQ(service.Evaluate(
                    Post("/query/join", "{\"ts\": 200, \"te\": 400}"),
                    MonotonicNowNs())
                .code,
            200);
}

TEST_F(ServeFixture, EvaluateRejectsBadRequests) {
  QueryService service(engine_.get(), QueryServiceOptions{});
  const int64_t now = MonotonicNowNs();
  const struct {
    const char* path;
    const char* body;
  } bad[] = {
      {"/query/snapshot", "{\"k\": 3}"},                 // missing t
      {"/query/snapshot", "not json"},                   // malformed
      {"/query/snapshot", "{\"t\": 300, \"bogus\": 1}"}, // unknown key
      {"/query/snapshot", "{\"t\": 300, \"k\": 0}"},     // bad k
      {"/query/snapshot", "{\"t\": 300, \"algo\": \"x\"}"},
      {"/query/snapshot", "{\"t\": 300, \"metric\": \"x\"}"},
      {"/query/snapshot", "{\"t\": 300, \"deadline_ms\": 0}"},
      {"/query/snapshot", "{\"t\": 300, \"ts\": 1}"},    // both forms
      {"/query/interval", "{\"ts\": 400, \"te\": 200}"}, // reversed
      {"/query/interval", "{\"ts\": 200}"},              // missing te
      {"/query/join", "{\"k\": 3}"},                     // no t, no ts/te
      {"/query/join", "{\"t\": 300, \"algo\": \"iterative\"}"},
  };
  for (const auto& request : bad) {
    const HttpResponse response =
        service.Evaluate(Post(request.path, request.body), now);
    EXPECT_EQ(response.code, 400)
        << request.path << " " << request.body << " -> " << response.body;
    EXPECT_NE(response.body.find("\"status\":\"error\""),
              std::string::npos);
  }
}

TEST_F(ServeFixture, EvaluateExpiredArrivalReturnsStructured504) {
  QueryService service(engine_.get(), QueryServiceOptions{});
  Counter& exceeded =
      MetricsRegistry::Default().counter("serve.deadline_exceeded");
  const int64_t before = exceeded.value();
  // Arrival two seconds ago with the default 1000 ms deadline: expired
  // before any engine work starts.
  const HttpResponse response =
      service.Evaluate(Post("/query/snapshot", "{\"t\": 300}"),
                       MonotonicNowNs() - 2'000'000'000);
  EXPECT_EQ(response.code, 504) << response.body;
  EXPECT_NE(response.body.find("\"status\":\"deadline_exceeded\""),
            std::string::npos);
  EXPECT_EQ(exceeded.value(), before + 1);
}

TEST_F(ServeFixture, LiveEndpointAnswersFromStreamingMonitor) {
  const auto monitor = MakeLiveMonitor();
  QueryService service(engine_.get(), QueryServiceOptions{}, monitor.get());
  // No t: defaults to the stream clock, echoed back.
  const HttpResponse at_now = service.Evaluate(
      Post("/query/live", "{\"k\": 3}"), MonotonicNowNs());
  EXPECT_EQ(at_now.code, 200) << at_now.body;
  EXPECT_NE(at_now.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(at_now.body.find("\"live\":true"), std::string::npos);
  EXPECT_NE(at_now.body.find("\"results\":[{\"poi\":"), std::string::npos);
  // Explicit t (>= the stream clock is the documented domain, but any t
  // parses) is echoed instead.
  const HttpResponse at_t = service.Evaluate(
      Post("/query/live", "{\"t\": 300, \"k\": 2}"), MonotonicNowNs());
  EXPECT_EQ(at_t.code, 200) << at_t.body;
  EXPECT_NE(at_t.body.find("\"t\":300"), std::string::npos);
  // GET with a query string works like the historical endpoints.
  EXPECT_EQ(service.Evaluate(Get("/query/live", "k=2"), MonotonicNowNs())
                .code,
            200);
}

TEST_F(ServeFixture, LiveEndpointRejectsBadRequests) {
  const auto monitor = MakeLiveMonitor();
  QueryService service(engine_.get(), QueryServiceOptions{}, monitor.get());
  const int64_t now = MonotonicNowNs();
  // Historical-only parameters are unknown keys on the live endpoint.
  const char* bad[] = {
      "{\"t\": 300, \"algo\": \"join\"}",
      "{\"t\": 300, \"metric\": \"density\"}",
      "{\"ts\": 200, \"te\": 400}",
      "{\"k\": 0}",
  };
  for (const char* body : bad) {
    const HttpResponse response =
        service.Evaluate(Post("/query/live", body), now);
    EXPECT_EQ(response.code, 400) << body << " -> " << response.body;
  }
  // Without an attached monitor the route is not registered; a direct
  // Evaluate must still fail clean.
  QueryService no_monitor(engine_.get(), QueryServiceOptions{});
  const HttpResponse off =
      no_monitor.Evaluate(Post("/query/live", "{\"k\": 3}"), now);
  EXPECT_EQ(off.code, 400) << off.body;
  EXPECT_NE(off.body.find("not enabled"), std::string::npos) << off.body;
}

TEST_F(ServeFixture, LiveEndpointHonorsDeadline) {
  const auto monitor = MakeLiveMonitor();
  QueryService service(engine_.get(), QueryServiceOptions{}, monitor.get());
  const HttpResponse response =
      service.Evaluate(Post("/query/live", "{\"k\": 3}"),
                       MonotonicNowNs() - 2'000'000'000);
  EXPECT_EQ(response.code, 504) << response.body;
  EXPECT_NE(response.body.find("\"status\":\"deadline_exceeded\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Approximate evaluation (docs/APPROXIMATION.md): the approx= request knob
// and the degraded-admission downgrade.

TEST_F(ServeFixture, ApproxKnobReturnsEstimatesWithErrorBounds) {
  QueryService service(engine_.get(), QueryServiceOptions{});
  const HttpResponse response = service.Evaluate(
      Post("/query/snapshot",
           "{\"t\": 300, \"k\": 3, \"algo\": \"iterative\", "
           "\"approx\": \"sampled\", \"sample_budget\": 8}"),
      MonotonicNowNs());
  EXPECT_EQ(response.code, 200) << response.body;
  EXPECT_NE(response.body.find("\"approx\":\"sampled\""), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"sample_budget\":8"), std::string::npos);
  // 20 objects against a budget of 8: the answer is estimated, and
  // estimated rows carry the error contract.
  EXPECT_NE(response.body.find("\"exact\":false"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"stderr\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"ci95\":["), std::string::npos);
  // Interval and live take the same knob.
  const auto monitor = MakeLiveMonitor();
  QueryService live_service(engine_.get(), QueryServiceOptions{},
                            monitor.get());
  const HttpResponse live = live_service.Evaluate(
      Get("/query/live", "t=300&k=3&approx=sampled&sample_budget=8"),
      MonotonicNowNs());
  EXPECT_EQ(live.code, 200) << live.body;
  EXPECT_NE(live.body.find("\"approx\":\"sampled\""), std::string::npos);
}

TEST_F(ServeFixture, ExplicitExactApproxKeepsResponseShape) {
  QueryService service(engine_.get(), QueryServiceOptions{});
  const std::string plain =
      service
          .Evaluate(Post("/query/snapshot",
                         "{\"t\": 300, \"k\": 3, \"algo\": \"iterative\"}"),
                    MonotonicNowNs())
          .body;
  const std::string pinned =
      service
          .Evaluate(Post("/query/snapshot",
                         "{\"t\": 300, \"k\": 3, \"algo\": \"iterative\", "
                         "\"approx\": \"exact\"}"),
                    MonotonicNowNs())
          .body;
  // approx=exact answers are bit-identical to pre-approximation
  // responses: same results array, no approx echo.
  EXPECT_EQ(plain.find("\"approx\""), std::string::npos);
  EXPECT_EQ(pinned.find("\"approx\""), std::string::npos);
  const auto results_of = [](const std::string& body) {
    return body.substr(body.find("\"results\""));
  };
  EXPECT_EQ(results_of(plain), results_of(pinned));
}

TEST_F(ServeFixture, ExactPinBypassesSampledServiceDefault) {
  // A server configured sampled end to end: engine config, monitor
  // options, and service default all carry mode=kSampled. A client
  // pinning approx=exact must still get the exact answer in the exact
  // response shape — never a sampled estimate re-routed by the config.
  ApproxConfig sampled;
  sampled.mode = ApproxMode::kSampled;
  sampled.sample_budget = 8;
  EngineConfig engine_config;
  engine_config.approx = sampled;
  QueryEngine sampled_engine(dataset_, engine_config);
  const auto sampled_monitor = MakeLiveMonitor(sampled);
  QueryServiceOptions options;
  options.approx = sampled;
  QueryService service(&sampled_engine, options, sampled_monitor.get());

  // Exact-default reference service over the same dataset.
  const auto exact_monitor = MakeLiveMonitor();
  QueryService exact_service(engine_.get(), QueryServiceOptions{},
                             exact_monitor.get());

  const int64_t now = MonotonicNowNs();
  // Sanity: without a pin the sampled default really applies (20 objects
  // against a budget of 8), so the exact-pin assertions below bite.
  const HttpResponse defaulted = service.Evaluate(
      Post("/query/snapshot",
           "{\"t\": 300, \"k\": 3, \"algo\": \"iterative\"}"),
      now);
  ASSERT_EQ(defaulted.code, 200) << defaulted.body;
  EXPECT_NE(defaulted.body.find("\"approx\":\"sampled\""),
            std::string::npos)
      << defaulted.body;
  EXPECT_NE(defaulted.body.find("\"exact\":false"), std::string::npos)
      << defaulted.body;

  const auto results_of = [](const std::string& body) {
    return body.substr(body.find("\"results\""));
  };
  const struct {
    const char* path;
    const char* body;
  } pinned[] = {
      {"/query/snapshot",
       "{\"t\": 300, \"k\": 3, \"algo\": \"iterative\", "
       "\"approx\": \"exact\"}"},
      {"/query/interval",
       "{\"ts\": 200, \"te\": 400, \"k\": 3, \"algo\": \"iterative\", "
       "\"approx\": \"exact\"}"},
      {"/query/live", "{\"t\": 300, \"k\": 3, \"approx\": \"exact\"}"},
  };
  for (const auto& request : pinned) {
    const HttpResponse response =
        service.Evaluate(Post(request.path, request.body), now);
    const HttpResponse reference =
        exact_service.Evaluate(Post(request.path, request.body), now);
    ASSERT_EQ(response.code, 200)
        << request.path << " -> " << response.body;
    // Exact responses keep the pre-approximation shape: no approx echo,
    // no per-row estimate fields.
    EXPECT_EQ(response.body.find("\"approx\""), std::string::npos)
        << response.body;
    EXPECT_EQ(response.body.find("\"stderr\""), std::string::npos)
        << response.body;
    EXPECT_EQ(response.body.find("\"exact\":"), std::string::npos)
        << response.body;
    EXPECT_EQ(results_of(response.body), results_of(reference.body))
        << request.path;
  }
}

TEST_F(ServeFixture, ApproxKnobRejectsUnsampleableShapes) {
  QueryService service(engine_.get(), QueryServiceOptions{});
  const int64_t now = MonotonicNowNs();
  const struct {
    const char* path;
    const char* body;
  } bad[] = {
      // The join algorithm (the default) always evaluates exactly.
      {"/query/snapshot", "{\"t\": 300, \"approx\": \"sampled\"}"},
      {"/query/join", "{\"t\": 300, \"approx\": \"adaptive\"}"},
      {"/query/snapshot",
       "{\"t\": 300, \"algo\": \"iterative\", \"metric\": \"density\", "
       "\"approx\": \"sampled\"}"},
      {"/query/snapshot", "{\"t\": 300, \"approx\": \"bogus\"}"},
      {"/query/snapshot",
       "{\"t\": 300, \"algo\": \"iterative\", \"approx\": \"sampled\", "
       "\"sample_budget\": 0}"},
      // A single draw has no within-sample variance, so its error bounds
      // would be undefined: budgets below 2 are rejected up front.
      {"/query/snapshot",
       "{\"t\": 300, \"algo\": \"iterative\", \"approx\": \"sampled\", "
       "\"sample_budget\": 1}"},
  };
  for (const auto& request : bad) {
    const HttpResponse response =
        service.Evaluate(Post(request.path, request.body), now);
    EXPECT_EQ(response.code, 400)
        << request.path << " " << request.body << " -> " << response.body;
  }
}

TEST_F(ServeFixture, DegradedAdmissionDowngradesToSampled) {
  QueryServiceOptions options;
  options.degrade_depth = 1;  // every admitted request runs degraded
  options.max_queue_wait_ms = 0;
  Counter& degraded = MetricsRegistry::Default().counter("serve.degraded");
  const int64_t before = degraded.value();

  HttpResponse captured;
  std::atomic<bool> responded{false};
  {
    QueryService service(engine_.get(), options);
    service.Submit(Post("/query/snapshot",
                        "{\"t\": 300, \"k\": 3, \"algo\": \"iterative\", "
                        "\"sample_budget\": 8}"),
                   [&](const HttpResponse& response) {
                     captured = response;
                     responded = true;
                   });
    service.Stop();  // drains the admitted request
  }
  ASSERT_TRUE(responded.load());
  EXPECT_EQ(captured.code, 200) << captured.body;
  EXPECT_NE(captured.body.find("\"approx\":\"sampled\""), std::string::npos)
      << captured.body;
  EXPECT_NE(captured.body.find("\"degraded\":true"), std::string::npos);
  EXPECT_EQ(degraded.value(), before + 1);

  // A client that pinned approx=exact is never downgraded.
  HttpResponse exact_response;
  std::atomic<bool> exact_responded{false};
  {
    QueryService service(engine_.get(), options);
    service.Submit(Post("/query/snapshot",
                        "{\"t\": 300, \"k\": 3, \"algo\": \"iterative\", "
                        "\"approx\": \"exact\"}"),
                   [&](const HttpResponse& response) {
                     exact_response = response;
                     exact_responded = true;
                   });
    service.Stop();
  }
  ASSERT_TRUE(exact_responded.load());
  EXPECT_EQ(exact_response.code, 200) << exact_response.body;
  EXPECT_EQ(exact_response.body.find("\"degraded\""), std::string::npos);
  EXPECT_EQ(exact_response.body.find("\"approx\""), std::string::npos);
  EXPECT_EQ(degraded.value(), before + 1);
}

TEST_F(ServeFixture, SubmitShedsInlineWhenQueueFull) {
  QueryServiceOptions options;
  options.queue_limit = 0;  // everything sheds at the door
  QueryService service(engine_.get(), options);
  Counter& requests = MetricsRegistry::Default().counter("serve.requests");
  Counter& admitted = MetricsRegistry::Default().counter("serve.admitted");
  Counter& shed = MetricsRegistry::Default().counter("serve.shed");
  const int64_t requests_before = requests.value();
  const int64_t admitted_before = admitted.value();
  const int64_t shed_before = shed.value();

  HttpResponse captured;
  bool responded = false;
  service.Submit(Post("/query/snapshot", "{\"t\": 300}"),
                 [&](const HttpResponse& response) {
                   captured = response;
                   responded = true;
                 });
  // queue_limit 0 sheds synchronously on the submitting thread.
  ASSERT_TRUE(responded);
  EXPECT_EQ(captured.code, 503);
  EXPECT_NE(captured.body.find("\"status\":\"shed\""), std::string::npos);
  EXPECT_NE(captured.body.find("\"reason\":\"queue_full\""),
            std::string::npos);
  EXPECT_EQ(requests.value(), requests_before + 1);
  EXPECT_EQ(admitted.value(), admitted_before);
  EXPECT_EQ(shed.value(), shed_before + 1);
}

TEST_F(ServeFixture, SubmitAfterStopShedsWithStoppingReason) {
  QueryService service(engine_.get(), QueryServiceOptions{});
  service.Stop();
  HttpResponse captured;
  service.Submit(Post("/query/snapshot", "{\"t\": 300}"),
                 [&](const HttpResponse& response) { captured = response; });
  EXPECT_EQ(captured.code, 503);
  EXPECT_NE(captured.body.find("\"reason\":\"stopping\""),
            std::string::npos);
}

TEST_F(ServeFixture, AdmittedRequestsRunOnExecutorAndDrainOnStop) {
  QueryServiceOptions options;
  options.max_queue_wait_ms = 0;  // disable wait shedding: exact counts
  QueryService service(engine_.get(), options);
  Counter& requests = MetricsRegistry::Default().counter("serve.requests");
  Counter& admitted = MetricsRegistry::Default().counter("serve.admitted");
  Counter& shed = MetricsRegistry::Default().counter("serve.shed");
  const int64_t requests_before = requests.value();
  const int64_t admitted_before = admitted.value();
  const int64_t shed_before = shed.value();

  constexpr int kRequests = 8;
  std::atomic<int> ok{0};
  std::atomic<int> other{0};
  for (int i = 0; i < kRequests; ++i) {
    service.Submit(Post("/query/snapshot", "{\"t\": 300, \"k\": 3}"),
                   [&](const HttpResponse& response) {
                     (response.code == 200 ? ok : other)
                         .fetch_add(1, std::memory_order_relaxed);
                   });
  }
  service.Stop();  // blocks until every admitted request responded

  EXPECT_EQ(ok.load(), kRequests);
  EXPECT_EQ(other.load(), 0);
  // Accounting identity: every request was admitted or shed, exactly once.
  EXPECT_EQ(requests.value(), requests_before + kRequests);
  EXPECT_EQ(admitted.value(), admitted_before + kRequests);
  EXPECT_EQ(shed.value(), shed_before);
}

// ---------------------------------------------------------------------------
// End-to-end over real sockets.

// Minimal blocking HTTP exchange against 127.0.0.1:port. `extra_headers`
// is spliced in verbatim and must be ""-or-CRLF-terminated lines (the
// trace round-trip test injects `traceparent` through it).
std::string SendHttp(int port, const std::string& method,
                     const std::string& target, const std::string& body,
                     const std::string& extra_headers = "") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  std::string request = method + " " + target +
                        " HTTP/1.1\r\nHost: localhost\r\n" + extra_headers +
                        "Content-Length: " +
                        std::to_string(body.size()) +
                        "\r\nConnection: close\r\n\r\n" + body;
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(ServeFixture, EndToEndHttpQueryRoundTrip) {
  QueryService service(engine_.get(), QueryServiceOptions{});
  ExpoServer server;
  service.RegisterRoutes(&server);
  ASSERT_TRUE(server.Start(0).ok());

  const std::string ok_response = SendHttp(
      server.port(), "POST", "/query/snapshot", "{\"t\": 300, \"k\": 3}");
  EXPECT_NE(ok_response.find("HTTP/1.1 200 OK"), std::string::npos)
      << ok_response;
  EXPECT_NE(ok_response.find("\"status\":\"ok\""), std::string::npos);

  const std::string get_response =
      SendHttp(server.port(), "GET", "/query/snapshot?t=300&k=2", "");
  EXPECT_NE(get_response.find("HTTP/1.1 200 OK"), std::string::npos)
      << get_response;

  const std::string bad_response =
      SendHttp(server.port(), "POST", "/query/snapshot", "nonsense");
  EXPECT_NE(bad_response.find("HTTP/1.1 400 Bad Request"),
            std::string::npos)
      << bad_response;

  const std::string wrong_method =
      SendHttp(server.port(), "DELETE", "/query/snapshot", "");
  EXPECT_NE(wrong_method.find("HTTP/1.1 405"), std::string::npos);

  server.Stop();
  service.Stop();
}

// An injected W3C traceparent header's trace id must come back in the
// response body, appear on /traces/recent with the full span tree
// (queue wait, engine phases, executor lanes, cache events), and land in
// exactly one canonical query-log record.
TEST_F(ServeFixture, TraceRoundTripPropagatesInjectedTraceparent) {
  // Parallel engine with the UR cache on, so the trace shows lane spans
  // and cache events, not just the serial phase children.
  EngineConfig config;
  config.threads = 2;
  config.parallel_threshold = 1;
  config.ur_cache.enabled = true;
  QueryEngine traced_engine(dataset_, config);

  const std::string log_path =
      ::testing::TempDir() + "/indoorflow_serve_trace.log";
  std::remove(log_path.c_str());
  ASSERT_TRUE(SetLogFile(log_path).ok());
  SetLogFormat(LogFormat::kJson);
  SetLogLevel(LogLevel::kInfo);
  TraceRing::Default().Clear();

  QueryService service(&traced_engine, QueryServiceOptions{});
  ExpoServer server;
  service.RegisterRoutes(&server);
  ASSERT_TRUE(server.Start(0).ok());

  const std::string kTraceId = "4bf92f3577b34da6a3ce929d0e0e4736";
  const std::string response = SendHttp(
      server.port(), "POST", "/query/snapshot", "{\"t\": 300, \"k\": 3}",
      "traceparent: 00-" + kTraceId + "-00f067aa0ba902b7-01\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos)
      << response;
  // The propagated trace id is the join key in the response body.
  EXPECT_NE(response.find("\"trace_id\":\"" + kTraceId + "\""),
            std::string::npos)
      << response;

  // FinishRequest runs before the response is written, so the ring is
  // already populated when the client turns around and polls it.
  const std::string traces =
      SendHttp(server.port(), "GET", "/traces/recent", "");
  EXPECT_NE(traces.find("\"trace_id\":\"" + kTraceId + "\""),
            std::string::npos)
      << traces;
  // Root parented to the remote span from the injected header.
  EXPECT_NE(traces.find("\"parent_id\":\"00f067aa0ba902b7\""),
            std::string::npos);
  for (const char* span_name :
       {"\"name\":\"request\"", "\"name\":\"queue_wait\"",
        "\"name\":\"retrieve\"", "\"name\":\"topk\"", "\"name\":\"lane "}) {
    EXPECT_NE(traces.find(span_name), std::string::npos)
        << "missing " << span_name << " in " << traces;
  }
  // First lookup on a fresh cache: a miss event on some span.
  EXPECT_NE(traces.find("\"name\":\"urcache.miss\""), std::string::npos)
      << traces;

  server.Stop();
  service.Stop();
  SetLogFormat(LogFormat::kText);

  // Exactly one canonical query-log record carries the same trace id.
  std::ifstream log_file(log_path);
  ASSERT_TRUE(log_file.is_open());
  std::string line;
  int query_log_records = 0;
  std::string record;
  while (std::getline(log_file, line)) {
    if (line.find("\"component\":\"query_log\"") == std::string::npos) {
      continue;
    }
    ++query_log_records;
    record = line;
  }
  EXPECT_EQ(query_log_records, 1) << "in " << log_path;
  EXPECT_NE(record.find("\"trace_id\":\"" + kTraceId + "\""),
            std::string::npos)
      << record;
  EXPECT_NE(record.find("\"endpoint\":\"/query/snapshot\""),
            std::string::npos)
      << record;
  EXPECT_NE(record.find("\"admission\":\"admitted\""), std::string::npos);
  EXPECT_NE(record.find("\"outcome\":\"ok\""), std::string::npos);
  // The full QueryStats ride along (spot-check two fields).
  EXPECT_NE(record.find("\"objects_retrieved\""), std::string::npos)
      << record;
  EXPECT_NE(record.find("\"latency_us\""), std::string::npos) << record;
}

// Unsampled requests still carry identifiers (the response join key)
// but allocate no trace and publish nothing to the ring.
TEST_F(ServeFixture, UnsampledRequestsKeepIdsButSkipTheRing) {
  TraceRing::Default().Clear();
  QueryServiceOptions options;
  options.trace_sample = 0.0;
  QueryService service(engine_.get(), options);
  const HttpResponse response = service.Evaluate(
      Post("/query/snapshot", "{\"t\": 300, \"k\": 3}"), MonotonicNowNs());
  EXPECT_EQ(response.code, 200) << response.body;
  EXPECT_NE(response.body.find("\"trace_id\":\""), std::string::npos);
  EXPECT_EQ(TraceRing::Default().size(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency suite (runs under the TSan CI job's -R "Concurrency").

class ServeConcurrencyTest : public ServeFixture {};

TEST_F(ServeConcurrencyTest, CancelRacesQueryWithoutDataRace) {
  // One thread runs queries under a control while another cancels it
  // mid-flight: TSan validates the token/flag synchronization; the query
  // must return (no wedge) with either a complete or an aborted result.
  for (int round = 0; round < 4; ++round) {
    CancelToken token;
    QueryControl control(Deadline::Infinite(), &token);
    std::thread canceller([&token] { token.Cancel(); });
    engine_->IntervalTopK(0.0, 600.0, 10, Algorithm::kIterative, nullptr,
                          nullptr, nullptr, &control);
    canceller.join();
    // Cancellation raced the query: whichever way it landed, the sticky
    // record must agree with the poll from this thread.
    EXPECT_EQ(control.Aborted(), control.ShouldAbort());
  }
}

TEST_F(ServeConcurrencyTest, ParallelFanOutObservesConcurrentCancel) {
  EngineConfig config;
  config.threads = 4;
  config.parallel_threshold = 1;
  QueryEngine parallel_engine(dataset_, config);
  for (int round = 0; round < 4; ++round) {
    CancelToken token;
    QueryControl control(Deadline::Infinite(), &token);
    std::thread canceller([&token] { token.Cancel(); });
    parallel_engine.IntervalTopK(0.0, 600.0, 10, Algorithm::kIterative,
                                 nullptr, nullptr, nullptr, &control);
    canceller.join();
    EXPECT_EQ(control.Aborted(), control.ShouldAbort());
  }
}

TEST_F(ServeConcurrencyTest, ConcurrentOverloadShedsCleanly) {
  QueryServiceOptions options;
  options.queue_limit = 2;
  options.max_queue_wait_ms = 0;  // depth shedding only: exact accounting
  QueryService service(engine_.get(), options);
  Counter& requests = MetricsRegistry::Default().counter("serve.requests");
  Counter& admitted = MetricsRegistry::Default().counter("serve.admitted");
  Counter& shed = MetricsRegistry::Default().counter("serve.shed");
  const int64_t requests_before = requests.value();
  const int64_t admitted_before = admitted.value();
  const int64_t shed_before = shed.value();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::atomic<int> ok{0};
  std::atomic<int> shed_responses{0};
  std::atomic<int> other{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int thread_index = 0; thread_index < kThreads; ++thread_index) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        service.Submit(Post("/query/snapshot", "{\"t\": 300, \"k\": 3}"),
                       [&](const HttpResponse& response) {
                         if (response.code == 200) {
                           ok.fetch_add(1, std::memory_order_relaxed);
                         } else if (response.code == 503) {
                           shed_responses.fetch_add(
                               1, std::memory_order_relaxed);
                         } else {
                           other.fetch_add(1, std::memory_order_relaxed);
                         }
                       });
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  service.Stop();

  constexpr int kTotal = kThreads * kPerThread;
  // Every request got exactly one response, none of them a crash or an
  // unstructured error, and the metrics agree with the responses.
  EXPECT_EQ(ok.load() + shed_responses.load() + other.load(), kTotal);
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok.load(), 0);  // the admitted trickle still gets answers
  EXPECT_EQ(requests.value(), requests_before + kTotal);
  EXPECT_EQ(admitted.value() - admitted_before, ok.load());
  EXPECT_EQ(shed.value() - shed_before, shed_responses.load());

  // The service must come out of overload still able to answer.
  EXPECT_EQ(service
                .Evaluate(Post("/query/snapshot", "{\"t\": 300}"),
                          MonotonicNowNs())
                .code,
            200);
}

}  // namespace
}  // namespace indoorflow
