// Tests for the query algorithms: iterative/join parity on both query
// types, k semantics, subset handling, and the sub-MBR ablation.

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "src/core/engine.h"

namespace indoorflow {
namespace {

// A small but nontrivial office dataset shared across tests.
class QueryFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    OfficeDatasetConfig config;
    config.num_objects = 40;
    config.duration = 1200.0;
    config.seed = 2024;
    dataset_ = new Dataset(GenerateOfficeDataset(config));
    EngineConfig engine_config;
    engine_config.topology = TopologyMode::kOff;  // cheap; topology covered below
    engine_ = new QueryEngine(*dataset_, engine_config);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete dataset_;
    engine_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static QueryEngine* engine_;
};

Dataset* QueryFixture::dataset_ = nullptr;
QueryEngine* QueryFixture::engine_ = nullptr;

// Normalizes a full ranking for comparison: sort by (flow desc, id asc).
std::vector<PoiFlow> Normalize(std::vector<PoiFlow> flows) {
  std::sort(flows.begin(), flows.end(),
            [](const PoiFlow& a, const PoiFlow& b) {
              if (a.flow != b.flow) return a.flow > b.flow;
              return a.poi < b.poi;
            });
  return flows;
}

void ExpectSameRanking(const std::vector<PoiFlow>& a,
                       const std::vector<PoiFlow>& b) {
  ASSERT_EQ(a.size(), b.size());
  const std::vector<PoiFlow> na = Normalize(a);
  const std::vector<PoiFlow> nb = Normalize(b);
  for (size_t i = 0; i < na.size(); ++i) {
    EXPECT_EQ(na[i].poi, nb[i].poi) << "rank " << i;
    EXPECT_NEAR(na[i].flow, nb[i].flow, 1e-9) << "rank " << i;
  }
}

TEST_F(QueryFixture, SnapshotIterativeMatchesJoinFullRanking) {
  const int k = static_cast<int>(dataset_->pois.size());
  for (const Timestamp t : {120.0, 400.0, 700.0, 1000.0}) {
    const auto iter = engine_->SnapshotTopK(t, k, Algorithm::kIterative);
    const auto join = engine_->SnapshotTopK(t, k, Algorithm::kJoin);
    ExpectSameRanking(iter, join);
  }
}

TEST_F(QueryFixture, IntervalIterativeMatchesJoinFullRanking) {
  const int k = static_cast<int>(dataset_->pois.size());
  const struct {
    Timestamp ts, te;
  } windows[] = {{100, 220}, {300, 600}, {50, 1150}};
  for (const auto& w : windows) {
    const auto iter =
        engine_->IntervalTopK(w.ts, w.te, k, Algorithm::kIterative);
    const auto join = engine_->IntervalTopK(w.ts, w.te, k, Algorithm::kJoin);
    ExpectSameRanking(iter, join);
  }
}

TEST_F(QueryFixture, SnapshotFlowsArePositiveSomewhere) {
  const auto top = engine_->SnapshotTopK(400.0, 5, Algorithm::kIterative);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_GT(top[0].flow, 0.0);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i].flow, top[i - 1].flow);  // sorted descending
  }
}

TEST_F(QueryFixture, TopKIsPrefixOfFullRanking) {
  const int full_k = static_cast<int>(dataset_->pois.size());
  const auto full =
      Normalize(engine_->SnapshotTopK(400.0, full_k, Algorithm::kJoin));
  const auto top5 =
      Normalize(engine_->SnapshotTopK(400.0, 5, Algorithm::kJoin));
  ASSERT_EQ(top5.size(), 5u);
  for (size_t i = 0; i < top5.size(); ++i) {
    EXPECT_NEAR(top5[i].flow, full[i].flow, 1e-9);
  }
}

TEST_F(QueryFixture, SubsetRestrictsResults) {
  const std::vector<PoiId> subset = {3, 7, 11, 20, 33, 41, 55, 60};
  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    const auto top = engine_->SnapshotTopK(400.0, 4, algo, &subset);
    EXPECT_EQ(top.size(), 4u);
    for (const PoiFlow& f : top) {
      EXPECT_TRUE(std::find(subset.begin(), subset.end(), f.poi) !=
                  subset.end())
          << "poi " << f.poi << " not in subset";
    }
  }
}

TEST_F(QueryFixture, QueryBeforeDataReturnsZeroFlows) {
  // Negative times precede every record: all flows are zero, results are
  // padded deterministically.
  const auto iter = engine_->SnapshotTopK(-100.0, 3, Algorithm::kIterative);
  const auto join = engine_->SnapshotTopK(-100.0, 3, Algorithm::kJoin);
  ASSERT_EQ(iter.size(), 3u);
  ASSERT_EQ(join.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(iter[i].flow, 0.0);
    EXPECT_DOUBLE_EQ(join[i].flow, 0.0);
    EXPECT_EQ(iter[i].poi, join[i].poi);
  }
}

TEST_F(QueryFixture, IntervalSubMbrAblationSameResults) {
  EngineConfig no_sub;
  no_sub.topology = TopologyMode::kOff;
  no_sub.interval_sub_mbrs = false;
  const QueryEngine engine_no_sub(*dataset_, no_sub);
  const int k = static_cast<int>(dataset_->pois.size());
  const auto with_sub =
      engine_->IntervalTopK(300.0, 600.0, k, Algorithm::kJoin);
  const auto without_sub =
      engine_no_sub.IntervalTopK(300.0, 600.0, k, Algorithm::kJoin);
  ExpectSameRanking(with_sub, without_sub);
}

TEST_F(QueryFixture, AreaBoundsSameResultsLessWork) {
  EngineConfig tight;
  tight.topology = TopologyMode::kOff;
  tight.join_area_bounds = true;
  const QueryEngine tight_engine(*dataset_, tight);
  const int k = static_cast<int>(dataset_->pois.size());
  for (const Timestamp t : {400.0, 700.0}) {
    const auto base = engine_->SnapshotTopK(t, k, Algorithm::kJoin);
    const auto bounded = tight_engine.SnapshotTopK(t, k, Algorithm::kJoin);
    ExpectSameRanking(base, bounded);
  }
  QueryStats base_stats;
  QueryStats bound_stats;
  engine_->IntervalTopK(300.0, 600.0, 10, Algorithm::kJoin, nullptr,
                        &base_stats);
  tight_engine.IntervalTopK(300.0, 600.0, 10, Algorithm::kJoin, nullptr,
                            &bound_stats);
  // Never more work, and identical interval results.
  EXPECT_LE(bound_stats.presence_evaluations,
            base_stats.presence_evaluations);
  EXPECT_LE(bound_stats.pois_evaluated, base_stats.pois_evaluated);
  const auto a = engine_->IntervalTopK(300.0, 600.0, k, Algorithm::kJoin);
  const auto b = tight_engine.IntervalTopK(300.0, 600.0, k,
                                           Algorithm::kJoin);
  ExpectSameRanking(a, b);
}

TEST_F(QueryFixture, DeterministicAcrossCalls) {
  const auto a = engine_->IntervalTopK(300.0, 500.0, 10, Algorithm::kJoin);
  const auto b = engine_->IntervalTopK(300.0, 500.0, 10, Algorithm::kJoin);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].poi, b[i].poi);
    EXPECT_DOUBLE_EQ(a[i].flow, b[i].flow);
  }
}

TEST_F(QueryFixture, TopologyCheckOnlyShrinksFlows) {
  EngineConfig with_topo;
  with_topo.topology = TopologyMode::kExact;
  const QueryEngine topo_engine(*dataset_, with_topo);
  const int k = static_cast<int>(dataset_->pois.size());
  const auto euclid =
      Normalize(engine_->SnapshotTopK(400.0, k, Algorithm::kIterative));
  const auto indoor =
      Normalize(topo_engine.SnapshotTopK(400.0, k, Algorithm::kIterative));
  std::map<PoiId, double> euclid_map;
  for (const PoiFlow& f : euclid) euclid_map[f.poi] = f.flow;
  for (const PoiFlow& f : indoor) {
    // Presence integration has tolerance presence_tolerance per object;
    // allow generous slack while requiring the monotone trend.
    EXPECT_LE(f.flow, euclid_map[f.poi] + 0.25) << "poi " << f.poi;
  }
}

TEST_F(QueryFixture, TopologyParityIterativeJoin) {
  EngineConfig with_topo;
  with_topo.topology = TopologyMode::kExact;
  const QueryEngine topo_engine(*dataset_, with_topo);
  const int k = static_cast<int>(dataset_->pois.size());
  const auto iter = topo_engine.SnapshotTopK(700.0, k, Algorithm::kIterative);
  const auto join = topo_engine.SnapshotTopK(700.0, k, Algorithm::kJoin);
  ExpectSameRanking(iter, join);
  const auto iter_i =
      topo_engine.IntervalTopK(300.0, 480.0, k, Algorithm::kIterative);
  const auto join_i =
      topo_engine.IntervalTopK(300.0, 480.0, k, Algorithm::kJoin);
  ExpectSameRanking(iter_i, join_i);
}

}  // namespace
}  // namespace indoorflow
