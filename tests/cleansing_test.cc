// Tests for reading-noise injection and speed-constraint cleansing.

#include <gtest/gtest.h>

#include "src/indoor/plan_builders.h"
#include "src/sim/detector.h"
#include "src/tracking/cleansing.h"
#include "src/tracking/merger.h"

namespace indoorflow {
namespace {

// Two far-apart devices (80m at Vmax 1.1 m/s needs ~71s) plus one nearby.
class CleansingFixture : public ::testing::Test {
 protected:
  CleansingFixture() {
    deployment_.AddDevice(Circle{{0, 0}, 1.5});    // dev 0
    deployment_.AddDevice(Circle{{10, 0}, 1.5});   // dev 1 (near dev 0)
    deployment_.AddDevice(Circle{{80, 0}, 1.5});   // dev 2 (far)
    deployment_.BuildIndex();
  }
  Deployment deployment_;
  CleansingOptions options_;  // vmax 1.1, slack 2s
};

TEST_F(CleansingFixture, FeasibilityPredicate) {
  const Device& d0 = deployment_.device(0);
  const Device& d1 = deployment_.device(1);
  const Device& d2 = deployment_.device(2);
  // 10m apart, 7m range-to-range: needs ~6.4s at 1.1 m/s.
  EXPECT_TRUE(ReadingsFeasible(d0, 0.0, d1, 10.0, options_));
  EXPECT_FALSE(ReadingsFeasible(d0, 0.0, d1, 2.0, options_));
  // Symmetric in time order.
  EXPECT_TRUE(ReadingsFeasible(d1, 10.0, d0, 0.0, options_));
  // Same device always feasible.
  EXPECT_TRUE(ReadingsFeasible(d0, 0.0, d0, 0.0, options_));
  // 80m in 5s: impossible.
  EXPECT_FALSE(ReadingsFeasible(d0, 0.0, d2, 5.0, options_));
}

TEST_F(CleansingFixture, RemovesIsolatedGhost) {
  // Genuine stream at dev0 with one impossible cross-read at dev2.
  std::vector<RawReading> readings = {
      {1, 0, 0.0}, {1, 0, 1.0}, {1, 2, 1.5}, {1, 0, 2.0}, {1, 0, 3.0}};
  const auto cleansed = CleanseReadings(readings, deployment_, options_);
  ASSERT_EQ(cleansed.size(), 4u);
  for (const RawReading& r : cleansed) EXPECT_EQ(r.device_id, 0);
}

TEST_F(CleansingFixture, KeepsGenuineTransition) {
  // A real walk dev0 -> dev1 taking 12s is feasible and must survive.
  std::vector<RawReading> readings = {
      {1, 0, 0.0}, {1, 0, 1.0}, {1, 1, 13.0}, {1, 1, 14.0}};
  const auto cleansed = CleanseReadings(readings, deployment_, options_);
  EXPECT_EQ(cleansed.size(), 4u);
}

TEST_F(CleansingFixture, GhostAtStreamHeadNeedsWitness) {
  // Ghost at dev2 before a genuine dev0 stream: dropped (two witnesses).
  std::vector<RawReading> with_witness = {
      {1, 2, 0.0}, {1, 0, 1.0}, {1, 0, 2.0}};
  const auto cleansed =
      CleanseReadings(with_witness, deployment_, options_);
  ASSERT_EQ(cleansed.size(), 2u);
  EXPECT_EQ(cleansed[0].device_id, 0);
  // With only two contradicting readings there is no way to adjudicate:
  // both are kept.
  std::vector<RawReading> ambiguous = {{1, 2, 0.0}, {1, 0, 1.0}};
  EXPECT_EQ(CleanseReadings(ambiguous, deployment_, options_).size(), 2u);
}

TEST_F(CleansingFixture, GhostAtStreamTailDropped) {
  std::vector<RawReading> readings = {
      {1, 0, 0.0}, {1, 0, 1.0}, {1, 2, 2.0}};
  const auto cleansed = CleanseReadings(readings, deployment_, options_);
  ASSERT_EQ(cleansed.size(), 2u);
  EXPECT_EQ(cleansed.back().device_id, 0);
}

TEST_F(CleansingFixture, StreamsAreIndependentPerObject) {
  // Object 2's far reading must not be judged against object 1's stream.
  std::vector<RawReading> readings = {
      {1, 0, 0.0}, {1, 0, 1.0}, {2, 2, 1.5}, {2, 2, 2.0}};
  const auto cleansed = CleanseReadings(readings, deployment_, options_);
  EXPECT_EQ(cleansed.size(), 4u);
}

TEST_F(CleansingFixture, NoiseInjectionRates) {
  std::vector<RawReading> readings;
  for (int i = 0; i < 10000; ++i) {
    readings.push_back({1, 0, static_cast<double>(i)});
  }
  NoiseOptions noise;
  noise.miss_rate = 0.2;
  noise.ghost_rate = 0.1;
  noise.seed = 5;
  const auto noisy = InjectNoise(readings, deployment_, noise);
  size_t kept = 0;
  size_t ghosts = 0;
  for (const RawReading& r : noisy) {
    if (r.device_id == 0) {
      ++kept;
    } else {
      ++ghosts;
    }
  }
  EXPECT_NEAR(static_cast<double>(kept), 8000.0, 150.0);
  EXPECT_NEAR(static_cast<double>(ghosts), 1000.0, 120.0);
}

TEST_F(CleansingFixture, NoNoiseIsIdentity) {
  std::vector<RawReading> readings = {{1, 0, 0.0}, {1, 1, 10.0}};
  const auto noisy = InjectNoise(readings, deployment_, NoiseOptions{});
  ASSERT_EQ(noisy.size(), readings.size());
}

// End-to-end robustness: a realistic walk, corrupted with ghosts, cleansed,
// merged — the recovered OTT matches the clean OTT closely.
TEST(CleansingPipelineTest, RecoversCleanRecords) {
  const BuiltPlan built = BuildOfficePlan({});
  const DoorGraph graph(built.plan);
  Deployment deployment;
  for (const Door& door : built.plan.doors()) {
    deployment.AddDevice(Circle{door.position, 1.5});
  }
  deployment.BuildIndex();
  const RandomWaypointModel model(built, graph);
  const ProximityDetector detector(deployment);

  int total_clean = 0;
  int total_recovered = 0;
  int total_dirty = 0;
  for (int object = 0; object < 8; ++object) {
    Rng rng(4000 + static_cast<uint64_t>(object));
    WaypointOptions options;
    options.duration = 400.0;
    options.max_pause = 60.0;
    const Trajectory traj = model.Generate(object, options, rng);

    std::vector<RawReading> clean;
    detector.DetectReadings(traj, DetectionOptions{}, &clean);
    if (clean.empty()) continue;

    NoiseOptions noise;
    noise.ghost_rate = 0.05;
    noise.seed = 77 + static_cast<uint64_t>(object);
    const auto noisy = InjectNoise(clean, deployment, noise);

    CleansingOptions cleanse;
    cleanse.vmax = 1.1;
    const auto recovered = CleanseReadings(noisy, deployment, cleanse);

    MergerOptions merge;
    merge.allow_overlap = true;  // ghosts interleave with genuine readings
    auto clean_table = MergeReadings(clean, merge);
    auto dirty_table = MergeReadings(noisy, merge);
    auto recovered_table = MergeReadings(recovered, merge);
    ASSERT_TRUE(clean_table.ok());
    ASSERT_TRUE(dirty_table.ok());
    ASSERT_TRUE(recovered_table.ok());
    total_clean += static_cast<int>(clean_table->size());
    total_dirty += static_cast<int>(dirty_table->size());
    total_recovered += static_cast<int>(recovered_table->size());
  }
  ASSERT_GT(total_clean, 20);
  // Each surviving ghost becomes a spurious record; cleansing restores the
  // record count to within 15% of the clean stream.
  EXPECT_GT(total_dirty, total_clean + 10);
  EXPECT_LT(std::abs(total_recovered - total_clean),
            total_clean * 15 / 100 + 2);
}

}  // namespace
}  // namespace indoorflow
