// Tests for overlapping detection ranges (paper Section 3 Remark): OTT
// overlap mode, AR-tree coverage, state resolution with multiple covering
// records, uncertainty regions, and query parity.

#include <set>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/tracking_state.h"
#include "src/indoor/plan_builders.h"
#include "src/sim/detector.h"

namespace indoorflow {
namespace {

TEST(OverlapOttTest, FinalizeModes) {
  ObjectTrackingTable strict;
  strict.Append({1, 0, 0, 10});
  strict.Append({1, 1, 5, 15});
  EXPECT_FALSE(strict.Finalize().ok());

  ObjectTrackingTable relaxed;
  relaxed.Append({1, 0, 0, 10});
  relaxed.Append({1, 1, 5, 15});
  ASSERT_TRUE(relaxed.Finalize(/*allow_overlap=*/true).ok());
  EXPECT_TRUE(relaxed.has_overlaps());

  ObjectTrackingTable disjoint;
  disjoint.Append({1, 0, 0, 10});
  disjoint.Append({1, 1, 12, 15});
  ASSERT_TRUE(disjoint.Finalize(/*allow_overlap=*/true).ok());
  EXPECT_FALSE(disjoint.has_overlaps());
}

TEST(OverlapOttTest, NestedRecordsDetected) {
  ObjectTrackingTable table;
  table.Append({1, 0, 0, 100});
  table.Append({1, 1, 10, 20});  // nested inside the first record
  ASSERT_TRUE(table.Finalize(true).ok());
  EXPECT_TRUE(table.has_overlaps());
}

class OverlapFixture : public ::testing::Test {
 protected:
  OverlapFixture() {
    // Two overlapping ranges around x = 5..9 (centers 4m apart, radius 3),
    // and a distant third device.
    deployment_.AddDevice(Circle{{5, 0}, 3.0});
    deployment_.AddDevice(Circle{{9, 0}, 3.0});
    deployment_.AddDevice(Circle{{30, 0}, 3.0});
    deployment_.BuildIndex();
    EXPECT_FALSE(deployment_.RangesDisjoint());

    // Object 1 walks through the overlap zone and later reaches dev2:
    // dev0 sees it during [0, 10], dev1 during [6, 16] (overlap [6, 10]),
    // dev2 during [40, 50].
    table_.Append({1, 0, 0, 10});
    table_.Append({1, 1, 6, 16});
    table_.Append({1, 2, 40, 50});
    INDOORFLOW_CHECK(table_.Finalize(true).ok());
    artree_ = ARTree::Build(table_);
    model_ = std::make_unique<UncertaintyModel>(table_, deployment_, 1.0);
  }

  Deployment deployment_;
  ObjectTrackingTable table_;
  ARTree artree_;
  std::unique_ptr<UncertaintyModel> model_;
};

TEST_F(OverlapFixture, ARTreeCoversAllTrackedTimes) {
  // Every t in [0, 50] must be covered by at least one entry of object 1.
  std::vector<ARTreeEntry> out;
  for (double t = 0.25; t < 50.0; t += 0.5) {
    artree_.PointQuery(t, &out);
    EXPECT_FALSE(out.empty()) << "t=" << t;
  }
  artree_.PointQuery(55.0, &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(OverlapFixture, StateWithTwoCoveringRecords) {
  const SnapshotState state = ResolveSnapshotStateAt(table_, 1, 8.0);
  ASSERT_TRUE(state.active());
  ASSERT_EQ(state.covering.size(), 2u);
  std::set<DeviceId> devices;
  for (RecordIndex idx : state.covering) {
    devices.insert(table_.record(idx).device_id);
  }
  EXPECT_EQ(devices, (std::set<DeviceId>{0, 1}));
  EXPECT_EQ(state.pre, kInvalidRecord);
}

TEST_F(OverlapFixture, DoubleCoverageShrinksUncertainty) {
  // At t=8 the object is in BOTH ranges: UR = lens of the two disks.
  const SnapshotState state = ResolveSnapshotStateAt(table_, 1, 8.0);
  const Region ur = model_->Snapshot(state, 8.0);
  EXPECT_TRUE(ur.Contains({7, 0}));    // in the lens
  EXPECT_FALSE(ur.Contains({3, 0}));   // only in dev0's range
  EXPECT_FALSE(ur.Contains({11, 0}));  // only in dev1's range
}

TEST_F(OverlapFixture, SingleCoverageKeepsFullRange) {
  // At t=2 only dev0 covers; UR = dev0's range (no pre).
  const SnapshotState state = ResolveSnapshotStateAt(table_, 1, 2.0);
  ASSERT_EQ(state.covering.size(), 1u);
  const Region ur = model_->Snapshot(state, 2.0);
  EXPECT_TRUE(ur.Contains({3, 0}));
  EXPECT_FALSE(ur.Contains({8.5, 0.0}));  // outside dev0's range
}

TEST_F(OverlapFixture, InactiveGapAfterOverlap) {
  // t=25 in the gap (16, 40): pre = dev1 record, suc = dev2 record.
  const SnapshotState state = ResolveSnapshotStateAt(table_, 1, 25.0);
  EXPECT_FALSE(state.active());
  EXPECT_EQ(table_.record(state.pre).device_id, 1);
  EXPECT_EQ(table_.record(state.suc).device_id, 2);
  const Region ur = model_->Snapshot(state, 25.0);
  // Ring(dev1, 9) ∩ Ring(dev2, 15): e.g. (17, 0) is 8m from dev1's center
  // (in [3,12]) and 13m from dev2's (in [3,18]).
  EXPECT_TRUE(ur.Contains({17, 0}));
  EXPECT_FALSE(ur.Contains({9, 0}));  // inside dev1's range: undetected
}

TEST_F(OverlapFixture, SnapshotMbrCoversUr) {
  Rng rng(61);
  for (const Timestamp t : {2.0, 8.0, 14.0, 25.0, 45.0}) {
    const SnapshotState state = ResolveSnapshotStateAt(table_, 1, t);
    const Region ur = model_->Snapshot(state, t);
    const Box mbr = model_->SnapshotMbr(state, t);
    const Box domain = ur.Bounds();
    for (int i = 0; i < 300; ++i) {
      const Point p{rng.Uniform(domain.min_x - 1, domain.max_x + 1),
                    rng.Uniform(domain.min_y - 1, domain.max_y + 1)};
      if (ur.Contains(p)) {
        EXPECT_TRUE(mbr.Contains(p)) << "t=" << t;
      }
    }
  }
}

TEST_F(OverlapFixture, IntervalChainIncludesOverlappingRecords) {
  const IntervalChain chain = RelevantChain(table_, 1, 4.0, 12.0);
  ASSERT_EQ(chain.records.size(), 2u);  // both overlapping records
  EXPECT_TRUE(chain.active_at_start);
  EXPECT_TRUE(chain.active_at_end);
  const Region ur = model_->Interval(chain, 4.0, 12.0);
  // Both full ranges are possible over the window.
  EXPECT_TRUE(ur.Contains({3, 0}));
  EXPECT_TRUE(ur.Contains({11, 0}));
  EXPECT_FALSE(ur.Contains({20, 0}));
}

TEST_F(OverlapFixture, IntervalChainAcrossGap) {
  const IntervalChain chain = RelevantChain(table_, 1, 20.0, 30.0);
  // Pure-gap window: pre (dev1 record) + suc (dev2 record).
  ASSERT_EQ(chain.records.size(), 2u);
  EXPECT_FALSE(chain.active_at_start);
  EXPECT_FALSE(chain.active_at_end);
  EXPECT_EQ(table_.record(chain.records[0]).device_id, 1);
  EXPECT_EQ(table_.record(chain.records[1]).device_id, 2);
}

TEST_F(OverlapFixture, NestedRecordChain) {
  ObjectTrackingTable nested;
  nested.Append({1, 0, 0, 100});
  nested.Append({1, 1, 10, 20});
  ASSERT_TRUE(nested.Finalize(true).ok());
  // Window inside the long record but after the nested one.
  const IntervalChain chain = RelevantChain(nested, 1, 30.0, 40.0);
  ASSERT_EQ(chain.records.size(), 1u);
  EXPECT_EQ(nested.record(chain.records[0]).device_id, 0);
  EXPECT_TRUE(chain.active_at_start);
  EXPECT_TRUE(chain.active_at_end);
  // State at t=50: covered by the long record only; pre is the nested one.
  const SnapshotState state = ResolveSnapshotStateAt(nested, 1, 50.0);
  ASSERT_EQ(state.covering.size(), 1u);
  EXPECT_EQ(nested.record(state.covering[0]).device_id, 0);
  ASSERT_NE(state.pre, kInvalidRecord);
  EXPECT_EQ(nested.record(state.pre).device_id, 1);
}

// End-to-end queries over an overlapping deployment on the tiny plan.
class OverlapQueryFixture : public ::testing::Test {
 protected:
  OverlapQueryFixture() : built_(BuildTinyPlan()), graph_(built_.plan) {
    // Overlapping readers inside room_a and near its door.
    deployment_.AddDevice(Circle{{4, 7}, 2.0});
    deployment_.AddDevice(Circle{{6, 7}, 2.0});  // overlaps dev0
    deployment_.AddDevice(Circle{{15, 8}, 2.0});  // room_b
    deployment_.BuildIndex();
    pois_.push_back(Poi{0, "room_a", Polygon::Rectangle(0, 4, 10, 12)});
    pois_.push_back(Poi{1, "room_b", Polygon::Rectangle(10, 4, 20, 12)});
    pois_.push_back(Poi{2, "hallway", Polygon::Rectangle(0, 0, 20, 4)});

    // Objects 0-2 sit in the overlap zone (seen by both dev0 and dev1);
    // object 3 in room_b.
    for (ObjectId o = 0; o < 3; ++o) {
      table_.Append({o, 0, 0, 100});
      table_.Append({o, 1, 0, 100});
    }
    table_.Append({3, 2, 0, 100});
    INDOORFLOW_CHECK(table_.Finalize(true).ok());

    EngineConfig config;
    config.vmax = 1.0;
    config.topology = TopologyMode::kOff;
    engine_ = std::make_unique<QueryEngine>(built_.plan, graph_,
                                            deployment_, table_, pois_,
                                            config);
  }

  BuiltPlan built_;
  DoorGraph graph_;
  Deployment deployment_;
  ObjectTrackingTable table_;
  PoiSet pois_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(OverlapQueryFixture, SnapshotParityAndNoDoubleCounting) {
  const auto iter = engine_->SnapshotTopK(50.0, 3, Algorithm::kIterative);
  const auto join = engine_->SnapshotTopK(50.0, 3, Algorithm::kJoin);
  ASSERT_EQ(iter.size(), 3u);
  ASSERT_EQ(join.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(iter[i].poi, join[i].poi);
    EXPECT_NEAR(iter[i].flow, join[i].flow, 1e-9);
  }
  // room_a wins with its 3 objects; despite each object having TWO
  // covering records, flow counts each object once with presence <= 1
  // (lens area / room area, summed over 3 objects).
  EXPECT_EQ(iter[0].poi, 0);
  EXPECT_LE(iter[0].flow, 3.0 + 1e-9);
  // Lens of the two overlap disks is smaller than a single disk.
  const double single_disk_presence = std::numbers::pi * 4.0 / 80.0;
  EXPECT_LT(iter[0].flow, 3.0 * single_disk_presence);
  EXPECT_GT(iter[0].flow, 0.0);
}

TEST_F(OverlapQueryFixture, IntervalParity) {
  const auto iter = engine_->IntervalTopK(10.0, 90.0, 3,
                                          Algorithm::kIterative);
  const auto join = engine_->IntervalTopK(10.0, 90.0, 3, Algorithm::kJoin);
  ASSERT_EQ(iter.size(), join.size());
  for (size_t i = 0; i < iter.size(); ++i) {
    EXPECT_EQ(iter[i].poi, join[i].poi);
    EXPECT_NEAR(iter[i].flow, join[i].flow, 1e-9);
  }
  EXPECT_EQ(iter[0].poi, 0);
}

// The detector naturally produces overlapping records over an overlapping
// deployment; the full pipeline works end to end.
TEST(OverlapPipelineTest, DetectorToQueries) {
  const BuiltPlan built = BuildTinyPlan();
  const DoorGraph graph(built.plan);
  Deployment deployment;
  deployment.AddDevice(Circle{{5, 4}, 2.5});   // door of room_a
  deployment.AddDevice(Circle{{8, 4}, 2.5});   // overlapping neighbor
  deployment.AddDevice(Circle{{15, 4}, 2.5});  // door of room_b
  deployment.BuildIndex();
  EXPECT_FALSE(deployment.RangesDisjoint());

  const RandomWaypointModel model(built, graph);
  const ProximityDetector detector(deployment);
  ObjectTrackingTable table;
  std::vector<TrackingRecord> records;
  for (ObjectId o = 0; o < 8; ++o) {
    Rng rng(900 + static_cast<uint64_t>(o));
    WaypointOptions options;
    options.duration = 300.0;
    options.max_pause = 30.0;
    const Trajectory traj = model.Generate(o, options, rng);
    records.clear();
    detector.DetectRecords(traj, DetectionOptions{}, &records);
    for (const TrackingRecord& r : records) table.Append(r);
  }
  ASSERT_TRUE(table.Finalize(/*allow_overlap=*/true).ok());

  PoiSet pois;
  pois.push_back(Poi{0, "room_a", Polygon::Rectangle(0, 4, 10, 12)});
  pois.push_back(Poi{1, "room_b", Polygon::Rectangle(10, 4, 20, 12)});
  pois.push_back(Poi{2, "hallway", Polygon::Rectangle(0, 0, 20, 4)});
  EngineConfig config;
  config.vmax = 1.1;
  config.topology = TopologyMode::kPartition;
  const QueryEngine engine(built.plan, graph, deployment, table, pois,
                           config);
  for (const Timestamp t : {60.0, 150.0, 240.0}) {
    const auto iter = engine.SnapshotTopK(t, 3, Algorithm::kIterative);
    const auto join = engine.SnapshotTopK(t, 3, Algorithm::kJoin);
    ASSERT_EQ(iter.size(), join.size());
    for (size_t i = 0; i < iter.size(); ++i) {
      EXPECT_NEAR(iter[i].flow, join[i].flow, 1e-9) << "t=" << t;
    }
  }
  const auto iter = engine.IntervalTopK(50.0, 250.0, 3,
                                        Algorithm::kIterative);
  const auto join = engine.IntervalTopK(50.0, 250.0, 3, Algorithm::kJoin);
  for (size_t i = 0; i < iter.size(); ++i) {
    EXPECT_NEAR(iter[i].flow, join[i].flow, 1e-9);
  }
}

// The generator-level overlapping deployment: real Bluetooth installations
// with overlapping coverage work through the whole pipeline.
TEST(OverlapPipelineTest, OverlappingCphGenerator) {
  CphDatasetConfig config;
  config.num_passengers = 20;
  config.window = 1200.0;
  config.overlapping_radios = true;
  const Dataset ds = GenerateCphLikeDataset(config);
  EXPECT_FALSE(ds.deployment.RangesDisjoint());
  EXPECT_TRUE(ds.ott.finalized());
  EXPECT_TRUE(ds.ott.has_overlaps());
  // Denser than the sparse default deployment.
  CphDatasetConfig sparse = config;
  sparse.overlapping_radios = false;
  const Dataset sparse_ds = GenerateCphLikeDataset(sparse);
  EXPECT_GT(ds.deployment.size(), sparse_ds.deployment.size());

  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kOff;
  const QueryEngine engine(ds, engine_config);
  const auto iter = engine.SnapshotTopK(600.0, 5, Algorithm::kIterative);
  const auto join = engine.SnapshotTopK(600.0, 5, Algorithm::kJoin);
  ASSERT_EQ(iter.size(), join.size());
  for (size_t i = 0; i < iter.size(); ++i) {
    EXPECT_NEAR(iter[i].flow, join[i].flow, 1e-9);
  }
  const auto iter_i =
      engine.IntervalTopK(300.0, 900.0, 5, Algorithm::kIterative);
  const auto join_i = engine.IntervalTopK(300.0, 900.0, 5, Algorithm::kJoin);
  for (size_t i = 0; i < iter_i.size(); ++i) {
    EXPECT_NEAR(iter_i[i].flow, join_i[i].flow, 1e-9);
  }
}

}  // namespace
}  // namespace indoorflow
