// Tests for the indoor-space model: floor plans, door graphs, indoor
// distances, plan builders, and POI generation.

#include <gtest/gtest.h>

#include "src/indoor/door_graph.h"
#include "src/indoor/floor_plan.h"
#include "src/indoor/indoor_distance.h"
#include "src/indoor/plan_builders.h"

namespace indoorflow {
namespace {

TEST(FloorPlanTest, TinyPlanStructure) {
  const BuiltPlan built = BuildTinyPlan();
  const FloorPlan& plan = built.plan;
  EXPECT_EQ(plan.partitions().size(), 3u);
  EXPECT_EQ(plan.doors().size(), 2u);
  EXPECT_TRUE(plan.Validate().ok());
  // Partition lookup.
  EXPECT_EQ(plan.PartitionAt({10, 2}), built.hallway_ids[0]);
  EXPECT_EQ(plan.PartitionAt({5, 8}), built.room_ids[0]);
  EXPECT_EQ(plan.PartitionAt({15, 8}), built.room_ids[1]);
  EXPECT_EQ(plan.PartitionAt({100, 100}), kInvalidPartition);
  // Door points belong to both sides.
  const std::vector<PartitionId> at_door = plan.PartitionsAt({5, 4});
  EXPECT_EQ(at_door.size(), 2u);
}

TEST(FloorPlanTest, AddDoorValidation) {
  FloorPlan plan;
  const PartitionId a =
      plan.AddPartition("a", Polygon::Rectangle(0, 0, 2, 2));
  EXPECT_FALSE(plan.AddDoor({1, 1}, a, a).ok());
  EXPECT_FALSE(plan.AddDoor({1, 1}, a, 99).ok());
}

TEST(FloorPlanTest, ValidateRejectsFloatingDoor) {
  FloorPlan plan;
  const PartitionId a =
      plan.AddPartition("a", Polygon::Rectangle(0, 0, 2, 2));
  const PartitionId b =
      plan.AddPartition("b", Polygon::Rectangle(10, 10, 12, 12));
  ASSERT_TRUE(plan.AddDoor({5, 5}, a, b).ok());  // not on either boundary
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(FloorPlanTest, ValidateRejectsDisconnectedPlan) {
  FloorPlan plan;
  plan.AddPartition("a", Polygon::Rectangle(0, 0, 2, 2));
  plan.AddPartition("b", Polygon::Rectangle(10, 10, 12, 12));
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(DoorGraphTest, TinyPlanDistances) {
  const BuiltPlan built = BuildTinyPlan();
  const DoorGraph graph(built.plan);
  ASSERT_EQ(graph.num_doors(), 2u);
  // Doors at (5,4) and (15,4) share the hallway: distance 10.
  EXPECT_DOUBLE_EQ(graph.Between(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(graph.Between(0, 0), 0.0);
  const std::vector<DoorId> path = graph.PathBetween(0, 1);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 1);
}

TEST(IndoorDistanceTest, SamePartitionIsEuclidean) {
  const BuiltPlan built = BuildTinyPlan();
  const DoorGraph graph(built.plan);
  const IndoorDistance dist(built.plan, graph);
  EXPECT_DOUBLE_EQ(dist.Between({1, 1}, {4, 1}), 3.0);
}

TEST(IndoorDistanceTest, CrossRoomGoesThroughDoors) {
  const BuiltPlan built = BuildTinyPlan();
  const DoorGraph graph(built.plan);
  const IndoorDistance dist(built.plan, graph);
  // room_a center to room_b center: through door (5,4), hallway, door
  // (15,4).
  const Point a{5, 8};
  const Point b{15, 8};
  const double expected = Distance(a, Point{5, 4}) + 10.0 +
                          Distance(Point{15, 4}, b);
  EXPECT_DOUBLE_EQ(dist.Between(a, b), expected);
  // Far longer than the Euclidean distance through the wall.
  EXPECT_GT(dist.Between(a, b), Distance(a, b));
}

TEST(IndoorDistanceTest, UnreachableOutsidePlan) {
  const BuiltPlan built = BuildTinyPlan();
  const DoorGraph graph(built.plan);
  const IndoorDistance dist(built.plan, graph);
  EXPECT_TRUE(std::isinf(dist.Between({1, 1}, {100, 100})));
  EXPECT_TRUE(std::isinf(dist.Between({-5, -5}, {1, 1})));
}

TEST(IndoorDistanceTest, ToDoorMatchesBetween) {
  const BuiltPlan built = BuildTinyPlan();
  const DoorGraph graph(built.plan);
  const IndoorDistance dist(built.plan, graph);
  const Point p{5, 8};  // in room_a
  EXPECT_DOUBLE_EQ(dist.ToDoor(p, 0),
                   dist.Between(p, built.plan.door(0).position));
  EXPECT_DOUBLE_EQ(dist.ToDoor(p, 1),
                   dist.Between(p, built.plan.door(1).position));
}

TEST(PlanBuildersTest, OfficePlanShape) {
  const OfficePlanConfig config;
  const BuiltPlan built = BuildOfficePlan(config);
  // 2 rows x 2 sides x 8 rooms = 32 rooms, spine + 2 hallways.
  EXPECT_EQ(built.room_ids.size(), 32u);
  EXPECT_EQ(built.hallway_ids.size(), 3u);
  EXPECT_TRUE(built.plan.Validate().ok());
  // One door per room plus one per hallway row.
  EXPECT_EQ(built.plan.doors().size(), 34u);
  // Every room is reachable from the spine via exactly its hallway.
  const DoorGraph graph(built.plan);
  const IndoorDistance dist(built.plan, graph);
  const Point spine_point{2.0, 1.0};
  for (PartitionId room : built.room_ids) {
    const Point target = built.plan.partition(room).shape.Centroid();
    EXPECT_FALSE(std::isinf(dist.Between(spine_point, target)));
  }
}

TEST(PlanBuildersTest, OfficePlanScalesWithConfig) {
  OfficePlanConfig config;
  config.num_rows = 3;
  config.rooms_per_side = 5;
  const BuiltPlan built = BuildOfficePlan(config);
  EXPECT_EQ(built.room_ids.size(), 30u);
  EXPECT_EQ(built.hallway_ids.size(), 4u);
  EXPECT_TRUE(built.plan.Validate().ok());
}

TEST(PlanBuildersTest, AirportPlanShape) {
  const AirportPlanConfig config;
  const BuiltPlan built = BuildAirportPlan(config);
  EXPECT_EQ(built.hallway_ids.size(), 8u);
  EXPECT_EQ(built.room_ids.size(), 32u);
  EXPECT_TRUE(built.plan.Validate().ok());
}

TEST(PlanBuildersTest, GeneratePoisDeterministicAndInPlan) {
  const BuiltPlan built = BuildOfficePlan({});
  Rng rng_a(11);
  Rng rng_b(11);
  const PoiSet a = GeneratePois(built, 75, rng_a);
  const PoiSet b = GeneratePois(built, 75, rng_b);
  ASSERT_EQ(a.size(), 75u);
  ASSERT_EQ(b.size(), 75u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<PoiId>(i));
    EXPECT_EQ(a[i].shape.Bounds(), b[i].shape.Bounds());
    EXPECT_GT(a[i].Area(), 0.0);
    // Each POI must be inside its host partition (hence inside the plan).
    const PartitionId host = built.plan.PartitionAt(a[i].shape.Centroid());
    EXPECT_NE(host, kInvalidPartition) << "POI " << i;
    EXPECT_TRUE(built.plan.partition(host).shape.Bounds().Contains(
        a[i].shape.Bounds()))
        << "POI " << i;
  }
}

TEST(PlanBuildersTest, PoisHaveVariedAreas) {
  const BuiltPlan built = BuildOfficePlan({});
  Rng rng(13);
  const PoiSet pois = GeneratePois(built, 75, rng);
  double min_area = 1e18;
  double max_area = 0.0;
  for (const Poi& p : pois) {
    min_area = std::min(min_area, p.Area());
    max_area = std::max(max_area, p.Area());
  }
  // "with different areas" — expect meaningful spread.
  EXPECT_GT(max_area, 2.0 * min_area);
}

}  // namespace
}  // namespace indoorflow
