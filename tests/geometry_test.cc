// Unit tests for the basic geometry primitives: points, boxes, circles,
// rings, polygons, clipping, tessellation, extended ellipses.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "src/geometry/box.h"
#include "src/geometry/circle.h"
#include "src/geometry/clip.h"
#include "src/geometry/extended_ellipse.h"
#include "src/geometry/point.h"
#include "src/geometry/polygon.h"
#include "src/geometry/tessellate.h"

namespace indoorflow {
namespace {

TEST(PointTest, BasicOps) {
  const Point a{1.0, 2.0};
  const Point b{4.0, 6.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Dot(a, b), 16.0);
  EXPECT_DOUBLE_EQ(Cross(a, b), -2.0);
  const Point u = Normalized(b - a);
  EXPECT_NEAR(Length(u), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Cross(u, Perp(u)), 1.0);
}

TEST(PointTest, ClosestPointOnSegment) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_EQ(ClosestPointOnSegment(s, {5, 3}), (Point{5, 0}));
  EXPECT_EQ(ClosestPointOnSegment(s, {-2, 1}), (Point{0, 0}));
  EXPECT_EQ(ClosestPointOnSegment(s, {14, -1}), (Point{10, 0}));
  EXPECT_DOUBLE_EQ(DistancePointSegment({5, 3}, s), 3.0);
}

TEST(PointTest, SegmentsIntersect) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}));
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}));
  // Touching at an endpoint counts.
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}}));
  // Collinear overlap.
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {3, 0}}, {{2, 0}, {5, 0}}));
  // Collinear disjoint.
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 0}}, {{2, 0}, {3, 0}}));
}

TEST(BoxTest, EmptyAndAccumulate) {
  Box b;
  EXPECT_TRUE(b.Empty());
  EXPECT_DOUBLE_EQ(b.Area(), 0.0);
  b.ExpandToInclude(Point{1, 1});
  EXPECT_FALSE(b.Empty());
  EXPECT_DOUBLE_EQ(b.Area(), 0.0);
  b.ExpandToInclude(Point{3, 5});
  EXPECT_DOUBLE_EQ(b.Area(), 8.0);
  EXPECT_TRUE(b.Contains(Point{2, 3}));
  EXPECT_FALSE(b.Contains(Point{0, 0}));
}

TEST(BoxTest, IntersectionAndUnion) {
  const Box a{0, 0, 4, 4};
  const Box b{2, 2, 6, 6};
  const Box i = Intersection(a, b);
  EXPECT_DOUBLE_EQ(i.Area(), 4.0);
  const Box u = Union(a, b);
  EXPECT_DOUBLE_EQ(u.Area(), 36.0);
  const Box far{10, 10, 11, 11};
  EXPECT_TRUE(Intersection(a, far).Empty());
  EXPECT_FALSE(a.Intersects(far));
  EXPECT_TRUE(a.Intersects(b));
}

TEST(BoxTest, MinMaxDistance) {
  const Box b{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(MinDistance(b, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(MinDistance(b, {5, 1}), 3.0);
  EXPECT_DOUBLE_EQ(MinDistance(b, {5, 6}), 5.0);
  EXPECT_DOUBLE_EQ(MaxDistance(b, {1, 1}), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(MaxDistance(b, {-1, -1}), std::sqrt(18.0));
}

TEST(CircleTest, ContainsAndBounds) {
  const Circle c{{2, 3}, 2.0};
  EXPECT_TRUE(c.Contains({2, 3}));
  EXPECT_TRUE(c.Contains({4, 3}));  // boundary
  EXPECT_FALSE(c.Contains({4.1, 3}));
  EXPECT_EQ(c.Bounds(), (Box{0, 1, 4, 5}));
  EXPECT_NEAR(c.Area(), 4.0 * std::numbers::pi, 1e-12);
  EXPECT_DOUBLE_EQ(c.DistanceToDisk({2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(c.DistanceToDisk({7, 3}), 3.0);
}

TEST(RingTest, AroundDetectionRange) {
  const Circle range{{0, 0}, 1.5};
  const Ring ring = Ring::Around(range, 2.0);
  EXPECT_DOUBLE_EQ(ring.inner_radius, 1.5);
  EXPECT_DOUBLE_EQ(ring.outer_radius, 3.5);
  EXPECT_FALSE(ring.Contains({0, 0}));       // inside the detection range
  EXPECT_TRUE(ring.Contains({2.0, 0}));      // in the annulus
  EXPECT_TRUE(ring.Contains({1.5, 0}));      // inner boundary
  EXPECT_TRUE(ring.Contains({3.5, 0}));      // outer boundary
  EXPECT_FALSE(ring.Contains({3.6, 0}));
  EXPECT_NEAR(ring.Area(),
              std::numbers::pi * (3.5 * 3.5 - 1.5 * 1.5), 1e-9);
}

TEST(PolygonTest, AreaCentroidPerimeter) {
  const Polygon rect = Polygon::Rectangle(0, 0, 4, 2);
  EXPECT_DOUBLE_EQ(rect.Area(), 8.0);
  EXPECT_DOUBLE_EQ(rect.SignedArea(), 8.0);  // CCW
  EXPECT_EQ(rect.Centroid(), (Point{2, 1}));
  EXPECT_DOUBLE_EQ(rect.Perimeter(), 12.0);
  EXPECT_TRUE(rect.IsConvex());
}

TEST(PolygonTest, NormalizeReversesClockwise) {
  Polygon cw({{0, 0}, {0, 2}, {2, 2}, {2, 0}});
  EXPECT_LT(cw.SignedArea(), 0.0);
  cw.Normalize();
  EXPECT_GT(cw.SignedArea(), 0.0);
}

TEST(PolygonTest, ContainsWithBoundary) {
  const Polygon rect = Polygon::Rectangle(0, 0, 4, 2);
  EXPECT_TRUE(rect.Contains({2, 1}));
  EXPECT_TRUE(rect.Contains({0, 0}));    // corner
  EXPECT_TRUE(rect.Contains({2, 0}));    // edge
  EXPECT_FALSE(rect.Contains({4.01, 1}));
  EXPECT_FALSE(rect.Contains({-1, 1}));
}

TEST(PolygonTest, NonConvexContains) {
  // An L-shape.
  const Polygon ell(
      {{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  EXPECT_FALSE(ell.IsConvex());
  EXPECT_TRUE(ell.Contains({1, 3}));
  EXPECT_TRUE(ell.Contains({3, 1}));
  EXPECT_FALSE(ell.Contains({3, 3}));
  EXPECT_DOUBLE_EQ(ell.Area(), 12.0);
}

TEST(PolygonTest, IntersectsOther) {
  const Polygon a = Polygon::Rectangle(0, 0, 2, 2);
  const Polygon b = Polygon::Rectangle(1, 1, 3, 3);
  const Polygon c = Polygon::Rectangle(5, 5, 6, 6);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  // Containment counts as intersection.
  const Polygon inner = Polygon::Rectangle(0.5, 0.5, 1.0, 1.0);
  EXPECT_TRUE(a.Intersects(inner));
  EXPECT_TRUE(inner.Intersects(a));
}

TEST(PolygonTest, DistanceToRegion) {
  const Polygon rect = Polygon::Rectangle(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(rect.Distance({1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(rect.Distance({4, 1}), 2.0);
  EXPECT_DOUBLE_EQ(rect.Distance({5, 6}), 5.0);
}

TEST(ClipTest, HalfPlane) {
  const Polygon rect = Polygon::Rectangle(0, 0, 4, 4);
  // Keep the left of the upward line x = 2.
  const auto clipped = ClipToHalfPlane(rect, {2, 0}, {2, 4});
  ASSERT_TRUE(clipped.has_value());
  EXPECT_DOUBLE_EQ(clipped->Area(), 8.0);
  // Clip away everything: keep the left of the upward line x = -1.
  const auto empty = ClipToHalfPlane(rect, {-1, 0}, {-1, 4});
  EXPECT_FALSE(empty.has_value());
}

TEST(ClipTest, ConvexIntersectionArea) {
  const Polygon a = Polygon::Rectangle(0, 0, 4, 4);
  const Polygon b = Polygon::Rectangle(2, 2, 6, 6);
  EXPECT_DOUBLE_EQ(ClippedArea(a, b), 4.0);
  EXPECT_DOUBLE_EQ(ClippedArea(b, a), 4.0);
  const Polygon c = Polygon::Rectangle(10, 10, 12, 12);
  EXPECT_DOUBLE_EQ(ClippedArea(a, c), 0.0);
  // Triangle clipped by a square: [0,4]^2 lies entirely under x + y <= 8,
  // while the triangle clipped by [2,6]^2 loses the corner above the line.
  const Polygon tri({{0, 0}, {8, 0}, {0, 8}});
  EXPECT_DOUBLE_EQ(ClippedArea(tri, a), 16.0);
  // [2,6]^2 minus the half above x + y = 8: 16 - (1/2 * 4 * 4) = 8.
  const Polygon shifted = Polygon::Rectangle(2, 2, 6, 6);
  EXPECT_DOUBLE_EQ(ClippedArea(tri, shifted), 8.0);
}

TEST(ClipTest, ClockwiseClipWindowIsNormalized) {
  const Polygon subject = Polygon::Rectangle(0, 0, 4, 4);
  Polygon cw_clip({{2, 2}, {2, 6}, {6, 6}, {6, 2}});
  EXPECT_LT(cw_clip.SignedArea(), 0.0);
  EXPECT_DOUBLE_EQ(ClippedArea(subject, cw_clip), 4.0);
}

TEST(TessellateTest, CircleAreaConverges) {
  const Circle c{{1, 1}, 3.0};
  const Polygon poly = TessellateCircle(c, 256);
  EXPECT_NEAR(poly.Area(), c.Area(), c.Area() * 1e-3);
  EXPECT_TRUE(poly.IsConvex());
}

TEST(ExtendedEllipseTest, DegenerateSameDevice) {
  // Same device on both ends: the object wandered at most L/2 away.
  const Circle range{{0, 0}, 1.0};
  const ExtendedEllipse theta(range, range, 4.0);
  EXPECT_FALSE(theta.EmptyBridge());
  EXPECT_TRUE(theta.Contains({0, 0}));
  EXPECT_TRUE(theta.Contains({3.0, 0}));   // r + L/2 = 3
  EXPECT_FALSE(theta.Contains({3.1, 0}));
}

TEST(ExtendedEllipseTest, BridgeMembership) {
  const Circle a{{0, 0}, 1.0};
  const Circle b{{10, 0}, 1.0};
  // Gap between disks is 8; budget 9 leaves 1m of slack.
  const ExtendedEllipse theta(a, b, 9.0);
  EXPECT_FALSE(theta.EmptyBridge());
  EXPECT_TRUE(theta.Contains({5, 0}));
  EXPECT_TRUE(theta.Contains({0, 0}));    // disk included (complete region)
  EXPECT_TRUE(theta.Contains({5, 0.4}));
  EXPECT_FALSE(theta.Contains({5, 3.0}));
  // On-axis behind disk a: at (-x, 0) with x > 1 the distance sum is
  // (x - 1) + (x + 9) = 2x + 8, so only x <= 0.5 would fit — i.e. nothing
  // outside the disk qualifies with just 1m of slack.
  EXPECT_TRUE(theta.Contains({-0.9, 0}));   // still inside disk a
  EXPECT_FALSE(theta.Contains({-1.5, 0}));
  // Off-axis at the midpoint: 2*(sqrt(25 + y^2) - 1) <= 9 iff y <= ~2.29.
  EXPECT_TRUE(theta.Contains({5, 2.0}));
  EXPECT_FALSE(theta.Contains({5, 2.5}));
}

TEST(ExtendedEllipseTest, ExcludeDisksVariant) {
  const Circle a{{0, 0}, 1.0};
  const Circle b{{10, 0}, 1.0};
  const ExtendedEllipse theta(a, b, 9.0, /*include_disks=*/false);
  EXPECT_FALSE(theta.Contains({0, 0}));
  EXPECT_TRUE(theta.Contains({5, 0}));
}

TEST(ExtendedEllipseTest, EmptyBridgeFallsBackToDisks) {
  const Circle a{{0, 0}, 1.0};
  const Circle b{{10, 0}, 1.0};
  const ExtendedEllipse theta(a, b, 2.0);  // cannot bridge an 8m gap
  EXPECT_TRUE(theta.EmptyBridge());
  EXPECT_TRUE(theta.Contains({0, 0}));
  EXPECT_TRUE(theta.Contains({10, 0}));
  EXPECT_FALSE(theta.Contains({5, 0}));
}

TEST(ExtendedEllipseTest, BoundsCoverRegion) {
  const Circle a{{0, 0}, 1.5};
  const Circle b{{7, 3}, 1.0};
  const ExtendedEllipse theta(a, b, 12.0);
  const Box bounds = theta.Bounds();
  // Sample the region boundary radially and check box coverage.
  const Polygon approx = TessellateExtendedEllipse(theta, 128);
  for (const Point& p : approx.vertices()) {
    EXPECT_TRUE(bounds.Contains(p))
        << "(" << p.x << ", " << p.y << ") outside bounds";
  }
}

TEST(ExtendedEllipseTest, TessellationMatchesMembership) {
  const Circle a{{0, 0}, 1.0};
  const Circle b{{6, 0}, 1.0};
  const ExtendedEllipse theta(a, b, 7.0);
  const Polygon approx = TessellateExtendedEllipse(theta, 256);
  // Every tessellation vertex must be (approximately) on the boundary:
  // inside the region, but outside when pushed 1% outward.
  const Point origin{3, 0};
  for (const Point& p : approx.vertices()) {
    EXPECT_TRUE(theta.Contains(p));
    const Point outward = origin + (p - origin) * 1.02;
    EXPECT_FALSE(theta.Contains(outward));
  }
}

TEST(ExtendedEllipseTest, SumDistanceBoundsAreConservative) {
  const Circle a{{0, 0}, 1.0};
  const Circle b{{8, 0}, 1.5};
  const ExtendedEllipse theta(a, b, 10.0);
  const Box box{2, 1, 4, 2};
  const double min_sum = theta.MinSumDistance(box);
  const double max_sum = theta.MaxSumDistance(box);
  // Check against a dense sample of the box.
  for (int i = 0; i <= 10; ++i) {
    for (int j = 0; j <= 10; ++j) {
      const Point p{box.min_x + box.Width() * i / 10.0,
                    box.min_y + box.Height() * j / 10.0};
      const double sum = a.DistanceToDisk(p) + b.DistanceToDisk(p);
      EXPECT_GE(sum + 1e-9, min_sum);
      EXPECT_LE(sum - 1e-9, max_sum);
    }
  }
}

}  // namespace
}  // namespace indoorflow
