// Differential validation of the whole query pipeline: engine flows vs a
// Monte-Carlo reference that computes each object presence by sampling the
// POI uniformly and testing membership in the derived uncertainty region.
// Exercises state resolution, chain extraction, region construction,
// topology checking, and area integration end to end.

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/naive.h"
#include "src/core/tracking_state.h"

namespace indoorflow {
namespace {

class DifferentialFixture : public ::testing::Test {
 protected:
  DifferentialFixture() {
    OfficeDatasetConfig config;
    config.num_objects = 12;
    config.duration = 900.0;
    config.seed = 321;
    dataset_ = GenerateOfficeDataset(config);
    graph_ = dataset_.door_graph.get();
    checker_ = std::make_unique<TopologyChecker>(
        dataset_.built.plan, *graph_, dataset_.deployment);
    model_ = std::make_unique<UncertaintyModel>(
        dataset_.ott, dataset_.deployment, dataset_.vmax, checker_.get(),
        TopologyMode::kPartition);
    artree_ = ARTree::Build(dataset_.ott);
  }

  // Monte-Carlo presence of `ur` in POI `poi` with N samples.
  double McPresence(const Region& ur, const Poi& poi, Rng& rng,
                    int samples) {
    const Box b = poi.shape.Bounds();
    int hits = 0;
    int in_poi = 0;
    for (int i = 0; i < samples; ++i) {
      const Point p{rng.Uniform(b.min_x, b.max_x),
                    rng.Uniform(b.min_y, b.max_y)};
      if (!poi.shape.Contains(p)) continue;
      ++in_poi;
      hits += ur.Contains(p) ? 1 : 0;
    }
    return in_poi == 0 ? 0.0
                       : static_cast<double>(hits) / in_poi *
                             (static_cast<double>(in_poi) / samples) *
                             (b.Area() / poi.Area());
  }

  Dataset dataset_;
  const DoorGraph* graph_ = nullptr;
  std::unique_ptr<TopologyChecker> checker_;
  std::unique_ptr<UncertaintyModel> model_;
  ARTree artree_;
};

TEST_F(DifferentialFixture, SnapshotFlowsMatchMonteCarlo) {
  constexpr int kSamples = 3000;
  const Timestamp t = 450.0;

  // Reference flows.
  std::vector<ARTreeEntry> entries;
  artree_.PointQuery(t, &entries);
  std::vector<Region> regions;
  for (const ARTreeEntry& le : entries) {
    regions.push_back(
        model_->Snapshot(ResolveSnapshotState(dataset_.ott, le, t), t));
  }
  Rng rng(99);
  std::vector<double> reference(dataset_.pois.size(), 0.0);
  std::vector<int> contributors(dataset_.pois.size(), 0);
  for (const Region& ur : regions) {
    for (const Poi& poi : dataset_.pois) {
      if (!ur.Bounds().Intersects(poi.shape.Bounds())) continue;
      reference[static_cast<size_t>(poi.id)] +=
          McPresence(ur, poi, rng, kSamples);
      contributors[static_cast<size_t>(poi.id)] += 1;
    }
  }

  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kPartition;
  engine_config.vmax = dataset_.vmax;
  const QueryEngine engine(dataset_, engine_config);
  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    const auto flows = engine.SnapshotTopK(
        t, static_cast<int>(dataset_.pois.size()), algo);
    ASSERT_EQ(flows.size(), dataset_.pois.size());
    for (const PoiFlow& f : flows) {
      // Monte-Carlo sigma per presence ~ 0.5/sqrt(N); integration adds its
      // own 1% tolerance per contributor.
      const double n =
          static_cast<double>(contributors[static_cast<size_t>(f.poi)]);
      const double tolerance =
          5.0 * 0.5 / std::sqrt(static_cast<double>(kSamples)) *
              std::sqrt(std::max(1.0, n)) +
          0.02 * n + 1e-9;
      EXPECT_NEAR(f.flow, reference[static_cast<size_t>(f.poi)], tolerance)
          << "poi " << f.poi << " (" << n << " contributors)";
    }
  }
}

TEST_F(DifferentialFixture, IntervalFlowsMatchMonteCarlo) {
  constexpr int kSamples = 2000;
  const Timestamp ts = 300.0;
  const Timestamp te = 480.0;

  std::vector<ARTreeEntry> entries;
  artree_.RangeQuery(ts, te, &entries);
  std::vector<Region> regions;
  std::set<ObjectId> seen;
  for (const ARTreeEntry& le : entries) {
    const ObjectId object = dataset_.ott.record(le.cur).object_id;
    if (!seen.insert(object).second) continue;
    const IntervalChain chain = RelevantChain(dataset_.ott, object, ts, te);
    if (chain.records.empty()) continue;
    regions.push_back(model_->Interval(chain, ts, te));
  }

  Rng rng(77);
  std::vector<double> reference(dataset_.pois.size(), 0.0);
  std::vector<int> contributors(dataset_.pois.size(), 0);
  for (const Region& ur : regions) {
    for (const Poi& poi : dataset_.pois) {
      if (!ur.Bounds().Intersects(poi.shape.Bounds())) continue;
      reference[static_cast<size_t>(poi.id)] +=
          McPresence(ur, poi, rng, kSamples);
      contributors[static_cast<size_t>(poi.id)] += 1;
    }
  }

  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kPartition;
  engine_config.vmax = dataset_.vmax;
  const QueryEngine engine(dataset_, engine_config);
  const auto flows = engine.IntervalTopK(
      ts, te, static_cast<int>(dataset_.pois.size()), Algorithm::kJoin);
  for (const PoiFlow& f : flows) {
    const double n =
        static_cast<double>(contributors[static_cast<size_t>(f.poi)]);
    const double tolerance =
        5.0 * 0.5 / std::sqrt(static_cast<double>(kSamples)) *
            std::sqrt(std::max(1.0, n)) +
        0.02 * n + 1e-9;
    EXPECT_NEAR(f.flow, reference[static_cast<size_t>(f.poi)], tolerance)
        << "poi " << f.poi;
  }
}

// The naive no-index implementation is the third witness: it must agree
// with both engine algorithms exactly (same uncertainty model, same
// integrator).
TEST_F(DifferentialFixture, NaiveMatchesEngineExactly) {
  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kPartition;
  engine_config.vmax = dataset_.vmax;
  const QueryEngine engine(dataset_, engine_config);

  NaiveContext naive;
  naive.table = &dataset_.ott;
  naive.model = model_.get();
  naive.pois = &dataset_.pois;

  std::vector<PoiId> all_ids;
  for (const Poi& poi : dataset_.pois) all_ids.push_back(poi.id);
  const int k = static_cast<int>(all_ids.size());

  // Presences are accumulated in different orders, so flows agree to
  // floating-point accumulation error (~1e-12), not bit-for-bit; compare
  // per-POI maps rather than rank order.
  const auto as_map = [](const std::vector<PoiFlow>& flows) {
    std::map<PoiId, double> out;
    for (const PoiFlow& f : flows) out[f.poi] = f.flow;
    return out;
  };

  for (const Timestamp t : {150.0, 450.0, 750.0}) {
    const auto expected = as_map(NaiveSnapshotTopK(naive, all_ids, t, k));
    for (const Algorithm algo :
         {Algorithm::kIterative, Algorithm::kJoin}) {
      const auto got = as_map(engine.SnapshotTopK(t, k, algo));
      ASSERT_EQ(got.size(), expected.size());
      for (const auto& [poi, flow] : expected) {
        ASSERT_TRUE(got.contains(poi)) << "t=" << t << " poi=" << poi;
        EXPECT_NEAR(got.at(poi), flow, 1e-9) << "t=" << t << " poi=" << poi;
      }
    }
  }
  const auto expected =
      as_map(NaiveIntervalTopK(naive, all_ids, 300.0, 480.0, k));
  const auto got =
      as_map(engine.IntervalTopK(300.0, 480.0, k, Algorithm::kJoin));
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [poi, flow] : expected) {
    EXPECT_NEAR(got.at(poi), flow, 1e-9) << "poi=" << poi;
  }
}

// Threshold and density results are definable straight from the naive
// flow map, so the same witness validates the extension queries: the
// threshold result is the filtered flow map, the density result is the
// area-normalized one.
TEST_F(DifferentialFixture, ThresholdAndDensityMatchNaiveDefinition) {
  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kPartition;
  engine_config.vmax = dataset_.vmax;
  const QueryEngine engine(dataset_, engine_config);

  NaiveContext naive;
  naive.table = &dataset_.ott;
  naive.model = model_.get();
  naive.pois = &dataset_.pois;

  std::vector<PoiId> all_ids;
  for (const Poi& poi : dataset_.pois) all_ids.push_back(poi.id);
  const int k = static_cast<int>(all_ids.size());
  const Timestamp t = 450.0;
  const auto reference = NaiveSnapshotTopK(naive, all_ids, t, k);
  std::map<PoiId, double> flows;
  for (const PoiFlow& f : reference) flows[f.poi] = f.flow;

  // Threshold: pick tau in the largest gap between adjacent flow values.
  std::vector<double> values;
  for (const auto& [id, flow] : flows) values.push_back(flow);
  std::sort(values.rbegin(), values.rend());
  double tau = 0.0;
  double best_gap = 0.0;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i - 1] - values[i] > best_gap) {
      best_gap = values[i - 1] - values[i];
      tau = (values[i - 1] + values[i]) / 2.0;
    }
  }
  if (tau > 0.0) {
    size_t expected_count = 0;
    for (const auto& [id, flow] : flows) expected_count += flow >= tau;
    for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
      const auto hot = engine.SnapshotThreshold(t, tau, algo);
      ASSERT_EQ(hot.size(), expected_count) << "tau=" << tau;
      for (const PoiFlow& f : hot) {
        EXPECT_NEAR(f.flow, flows.at(f.poi), 1e-9);
        EXPECT_GE(f.flow, tau);
      }
    }
  }

  // Density: naive flow / POI area, per POI.
  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    const auto dense = engine.SnapshotDensityTopK(t, k, algo);
    ASSERT_EQ(dense.size(), flows.size());
    for (const PoiFlow& f : dense) {
      const double area = dataset_.pois[static_cast<size_t>(f.poi)].Area();
      ASSERT_GT(area, 0.0);
      EXPECT_NEAR(f.flow, flows.at(f.poi) / area, 1e-9) << "poi=" << f.poi;
    }
  }
}

// The UR cache must be invisible in results: a hit hands back the exact
// same shared CSG node tree the miss path would have built, so every flow
// is bit-identical — not merely close — with caching on, both on the cold
// first pass (all misses + inserts) and the warm rerun (hits). Covers the
// full query matrix: top-k / threshold / density x snapshot / interval,
// both algorithms, several timestamps.
TEST_F(DifferentialFixture, CachedResultsAreBitIdenticalAcrossQueryMatrix) {
  EngineConfig base_config;
  base_config.topology = TopologyMode::kPartition;
  base_config.vmax = dataset_.vmax;
  const QueryEngine uncached(dataset_, base_config);

  EngineConfig cached_config = base_config;
  cached_config.ur_cache.enabled = true;
  const QueryEngine cached(dataset_, cached_config);
  ASSERT_NE(cached.ur_cache(), nullptr);
  ASSERT_EQ(uncached.ur_cache(), nullptr);

  const int k = static_cast<int>(dataset_.pois.size());
  const double tau = 0.05;
  const auto expect_identical = [](const std::vector<PoiFlow>& a,
                                   const std::vector<PoiFlow>& b,
                                   const char* what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].poi, b[i].poi) << what << " rank " << i;
      // EXPECT_EQ, not EXPECT_NEAR: bit-identical is the contract.
      EXPECT_EQ(a[i].flow, b[i].flow) << what << " rank " << i;
    }
  };

  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    for (const Timestamp t : {150.0, 450.0, 750.0}) {
      const Timestamp ts = t - 60.0;
      const Timestamp te = t + 60.0;
      // Two cached passes per query: pass 0 is cold (misses populate the
      // cache), pass 1 is warm (hits reuse it); both must equal uncached.
      for (int pass = 0; pass < 2; ++pass) {
        expect_identical(uncached.SnapshotTopK(t, k, algo),
                         cached.SnapshotTopK(t, k, algo), "snapshot topk");
        expect_identical(uncached.IntervalTopK(ts, te, k, algo),
                         cached.IntervalTopK(ts, te, k, algo),
                         "interval topk");
        expect_identical(uncached.SnapshotThreshold(t, tau, algo),
                         cached.SnapshotThreshold(t, tau, algo),
                         "snapshot threshold");
        expect_identical(uncached.IntervalThreshold(ts, te, tau, algo),
                         cached.IntervalThreshold(ts, te, tau, algo),
                         "interval threshold");
        expect_identical(uncached.SnapshotDensityTopK(t, k, algo),
                         cached.SnapshotDensityTopK(t, k, algo),
                         "snapshot density");
        expect_identical(uncached.IntervalDensityTopK(ts, te, k, algo),
                         cached.IntervalDensityTopK(ts, te, k, algo),
                         "interval density");
      }
    }
  }
  const UrCache::Counters counters = cached.ur_cache()->TotalCounters();
  EXPECT_GT(counters.hits, 0);
  EXPECT_GT(counters.inserts, 0);
}

// The per-query hit counter surfaces through QueryStats: a warm rerun at
// the same timestamp reports hits instead of derivations.
TEST_F(DifferentialFixture, WarmRerunBooksCacheHitsNotDerivations) {
  EngineConfig config;
  config.topology = TopologyMode::kPartition;
  config.vmax = dataset_.vmax;
  config.ur_cache.enabled = true;
  const QueryEngine engine(dataset_, config);

  QueryStats cold;
  engine.SnapshotTopK(450.0, 5, Algorithm::kIterative, nullptr, &cold);
  EXPECT_GT(cold.regions_derived, 0);
  EXPECT_EQ(cold.ur_cache_hits, 0);

  QueryStats warm;
  engine.SnapshotTopK(450.0, 5, Algorithm::kIterative, nullptr, &warm);
  EXPECT_EQ(warm.regions_derived, 0);
  EXPECT_EQ(warm.ur_cache_hits, cold.regions_derived);
}

}  // namespace
}  // namespace indoorflow
