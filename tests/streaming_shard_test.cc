// Differential and concurrency tests for the sharded streaming monitor.
//
// The shard count is a pure performance knob: every query result —
// CurrentTopK flows, LiveRegion geometry, ActiveObjects — must be
// bit-identical across shard counts, with and without the UR cache, and
// whether a tally was reused incrementally or recomputed from scratch.
// The serial ascending-object-id merge in CurrentTopK is what makes the
// flow accumulation order (and hence the floating-point sums) independent
// of how objects landed in shards; these tests pin that contract.
//
// The concurrency suite hammers ingest against queries across shards and
// is the intended prey of the TSan CI job (see .github/workflows): the
// stream clock CAS, the per-shard dirty flags, and the published
// shared_ptr tallies are all exercised from racing threads.

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/deadline.h"
#include "src/common/metrics.h"
#include "src/core/streaming.h"
#include "src/sim/detector.h"
#include "src/sim/generators.h"

namespace indoorflow {
namespace {

constexpr int kObjects = 6;

struct StreamScenario {
  BuiltPlan built;
  std::unique_ptr<DoorGraph> graph;
  Deployment deployment;
  PoiSet pois;
  std::vector<RawReading> readings;  // time-sorted
};

StreamScenario MakeScenario(uint64_t seed) {
  StreamScenario s;
  s.built = BuildOfficePlan({});
  s.graph = std::make_unique<DoorGraph>(s.built.plan);
  for (const Door& door : s.built.plan.doors()) {
    s.deployment.AddDevice(Circle{door.position, 1.5});
  }
  s.deployment.BuildIndex();
  Rng poi_rng(seed ^ 0x5a);
  s.pois = GeneratePois(s.built, 20, poi_rng);

  const RandomWaypointModel model(s.built, *s.graph);
  const ProximityDetector detector(s.deployment);
  for (ObjectId o = 0; o < kObjects; ++o) {
    Rng rng(seed * 977 + static_cast<uint64_t>(o));
    WaypointOptions options;
    options.duration = 500.0;
    options.max_pause = 60.0;
    const Trajectory traj = model.Generate(o, options, rng);
    detector.DetectReadings(traj, DetectionOptions{}, &s.readings);
  }
  std::sort(s.readings.begin(), s.readings.end(),
            [](const RawReading& a, const RawReading& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.object_id != b.object_id) return a.object_id < b.object_id;
              return a.device_id < b.device_id;
            });
  return s;
}

StreamingOptions MakeOptions(int shards, bool cache) {
  StreamingOptions options;
  options.vmax = 1.1;
  options.shards = shards;
  options.ur_cache.enabled = cache;
  return options;
}

void ExpectSameTopK(const std::vector<PoiFlow>& a,
                    const std::vector<PoiFlow>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].poi, b[i].poi) << what << " rank " << i;
    // Exact equality, deliberately: the ordered reduce promises the very
    // same doubles, not merely close ones.
    EXPECT_EQ(a[i].flow, b[i].flow) << what << " rank " << i;
  }
}

class ShardDifferential : public ::testing::TestWithParam<uint64_t> {};

// The contract in one test: every (shard count, cache) configuration
// answers every query exactly like the single-shard cache-less baseline.
TEST_P(ShardDifferential, ShardCountAndCacheAreInvisible) {
  const StreamScenario s = MakeScenario(GetParam());
  if (s.readings.empty()) GTEST_SKIP() << "no detections for this seed";

  StreamingMonitor baseline(s.deployment, s.pois, MakeOptions(1, false));
  for (const RawReading& r : s.readings) {
    ASSERT_TRUE(baseline.Ingest(r).ok());
  }
  const Timestamp now = baseline.now();
  const auto base_top =
      baseline.CurrentTopK(now, static_cast<int>(s.pois.size()));
  const size_t base_active = baseline.ActiveObjects(now);

  const Box domain = s.built.plan.Bounds();
  for (const int shards : {2, 8}) {
    for (const bool cache : {false, true}) {
      StreamingMonitor monitor(s.deployment, s.pois,
                               MakeOptions(shards, cache));
      for (const RawReading& r : s.readings) {
        ASSERT_TRUE(monitor.Ingest(r).ok());
      }
      ASSERT_EQ(monitor.now(), now);
      EXPECT_EQ(monitor.ActiveObjects(now), base_active);
      EXPECT_EQ(monitor.TrackCount(), baseline.TrackCount());
      // Query twice: the first answer comes from a full recompute, the
      // second from cached tallies (and, with the cache on, memoized
      // regions) — both must equal the baseline bit for bit.
      ExpectSameTopK(monitor.CurrentTopK(now, static_cast<int>(s.pois.size())),
                     base_top, "cold top-k");
      ExpectSameTopK(monitor.CurrentTopK(now, static_cast<int>(s.pois.size())),
                     base_top, "warm top-k");
      Rng sample_rng(GetParam() ^ 0xabc);
      for (ObjectId o = 0; o < kObjects; ++o) {
        const Region base_region = baseline.LiveRegion(o, now);
        const Region region = monitor.LiveRegion(o, now);
        ASSERT_EQ(region.IsEmpty(), base_region.IsEmpty()) << "object " << o;
        for (int i = 0; i < 100; ++i) {
          const Point p{sample_rng.Uniform(domain.min_x, domain.max_x),
                        sample_rng.Uniform(domain.min_y, domain.max_y)};
          EXPECT_EQ(region.Contains(p), base_region.Contains(p))
              << "object " << o << " shards=" << shards
              << " cache=" << cache;
        }
      }
    }
  }
}

// Incremental path: after a query published every shard's tally, further
// ingest dirties only the touched shards — the next query must reuse the
// clean tallies and still match a monitor that recomputed everything.
TEST_P(ShardDifferential, IncrementalReuseMatchesFullRecompute) {
  const StreamScenario s = MakeScenario(GetParam() ^ 0x1122);
  if (s.readings.size() < 10) GTEST_SKIP() << "too few readings";

  StreamingMonitor incremental(s.deployment, s.pois, MakeOptions(8, false));
  const size_t half = s.readings.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(incremental.Ingest(s.readings[i]).ok());
  }
  // Publish tallies for every shard at the mid-stream clock.
  (void)incremental.CurrentTopK(incremental.now(),
                                static_cast<int>(s.pois.size()));
  // Dirty a strict subset of shards: replay the second half for one
  // object only (the others' shards keep their published tallies, which
  // are stale by timestamp and must be recomputed — but the reuse logic
  // must not serve them as-is for the *new* t).
  const ObjectId touched = s.readings[half].object_id;
  Timestamp last_t = 0.0;
  for (size_t i = half; i < s.readings.size(); ++i) {
    if (s.readings[i].object_id != touched) continue;
    ASSERT_TRUE(incremental.Ingest(s.readings[i]).ok());
    last_t = s.readings[i].t;
  }
  if (last_t == 0.0) GTEST_SKIP() << "object fell silent in second half";

  StreamingMonitor fresh(s.deployment, s.pois, MakeOptions(8, false));
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(fresh.Ingest(s.readings[i]).ok());
  }
  for (size_t i = half; i < s.readings.size(); ++i) {
    if (s.readings[i].object_id != touched) continue;
    ASSERT_TRUE(fresh.Ingest(s.readings[i]).ok());
  }
  const Timestamp now = incremental.now();
  ASSERT_EQ(fresh.now(), now);
  ExpectSameTopK(incremental.CurrentTopK(now, static_cast<int>(s.pois.size())),
                 fresh.CurrentTopK(now, static_cast<int>(s.pois.size())),
                 "incremental vs fresh");
  // And again at the same t: now every shard reuses its tally outright.
  ExpectSameTopK(incremental.CurrentTopK(now, static_cast<int>(s.pois.size())),
                 fresh.CurrentTopK(now, static_cast<int>(s.pois.size())),
                 "all-reuse vs fresh");
}

// IngestBatch is a locking optimization, not a semantic one.
TEST_P(ShardDifferential, BatchIngestMatchesSequential) {
  const StreamScenario s = MakeScenario(GetParam() ^ 0x3344);
  if (s.readings.empty()) GTEST_SKIP();

  StreamingMonitor sequential(s.deployment, s.pois, MakeOptions(4, false));
  for (const RawReading& r : s.readings) {
    ASSERT_TRUE(sequential.Ingest(r).ok());
  }
  StreamingMonitor batched(s.deployment, s.pois, MakeOptions(4, false));
  constexpr size_t kBatch = 37;  // deliberately unaligned with anything
  for (size_t i = 0; i < s.readings.size(); i += kBatch) {
    const size_t end = std::min(i + kBatch, s.readings.size());
    const std::vector<RawReading> chunk(
        s.readings.begin() + static_cast<ptrdiff_t>(i),
        s.readings.begin() + static_cast<ptrdiff_t>(end));
    ASSERT_TRUE(batched.IngestBatch(chunk).ok());
  }
  ASSERT_EQ(batched.now(), sequential.now());
  EXPECT_EQ(batched.TrackCount(), sequential.TrackCount());
  ExpectSameTopK(
      batched.CurrentTopK(batched.now(), static_cast<int>(s.pois.size())),
      sequential.CurrentTopK(sequential.now(),
                             static_cast<int>(s.pois.size())),
      "batched vs sequential");
}

// A batch with bad readings applies the good ones and reports the first
// failure.
TEST(ShardBatchTest, BatchRejectsIndividually) {
  Deployment deployment;
  deployment.AddDevice(Circle{{0, 0}, 1.0});
  deployment.BuildIndex();
  PoiSet pois;
  pois.push_back(Poi{0, "spot", Polygon::Rectangle(-2, -2, 2, 2)});
  StreamingMonitor monitor(deployment, pois, MakeOptions(2, false));
  const std::vector<RawReading> batch = {
      {1, 0, 10.0},
      {1, 99, 11.0},  // unknown device: rejected
      {2, 0, 12.0},
      {1, 0, 5.0},  // out of order for object 1: rejected
  };
  const Status status = monitor.IngestBatch(batch);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(monitor.TrackCount(), 2u);  // objects 1 and 2 both landed
  EXPECT_DOUBLE_EQ(monitor.now(), 12.0);
}

// The returned status is the first rejection in the batch's ARRIVAL
// order, even though readings replay shard by shard. Object 1 lands in
// shard 1 and object 2 in shard 0, so the shard-order replay hits object
// 2's rejection first — but object 1's came earlier in the batch.
TEST(ShardBatchTest, FirstRejectionFollowsArrivalOrder) {
  Deployment deployment;
  deployment.AddDevice(Circle{{0, 0}, 1.0});
  deployment.BuildIndex();
  PoiSet pois;
  pois.push_back(Poi{0, "spot", Polygon::Rectangle(-2, -2, 2, 2)});
  StreamingMonitor monitor(deployment, pois, MakeOptions(2, false));
  const std::vector<RawReading> batch = {
      {2, 0, 10.0},
      {1, 99, 11.0},  // index 1, shard 1: unknown device
      {2, 0, 5.0},    // index 2, shard 0: out of order for object 2
  };
  const Status status = monitor.IngestBatch(batch);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "unknown device 99");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardDifferential,
                         ::testing::Range<uint64_t>(5000, 5004));

// Expired tracks leave the table — and the track_table_size gauge — on
// both eviction paths: the amortized ingest sweep and the query-time
// recompute walk.
TEST(ShardEvictionTest, ExpiredTracksAreEvicted) {
  Deployment deployment;
  deployment.AddDevice(Circle{{0, 0}, 1.0});
  deployment.AddDevice(Circle{{10, 0}, 1.0});
  deployment.BuildIndex();
  PoiSet pois;
  pois.push_back(Poi{0, "west", Polygon::Rectangle(-2, -2, 2, 2)});
  pois.push_back(Poi{1, "east", Polygon::Rectangle(8, -2, 12, 2)});

  StreamingOptions options;
  options.vmax = 1.0;
  // Deployment reach is 12m at vmax 1, so the eviction lag stays the
  // expiry itself and the timings below are exact.
  options.expiry_seconds = 30.0;
  options.shards = 1;  // all objects share the swept shard
  StreamingMonitor monitor(deployment, pois, options);

  Counter& evicted_counter =
      MetricsRegistry::Default().counter("streaming.tracks_evicted");
  Gauge& size_gauge =
      MetricsRegistry::Default().gauge("streaming.track_table_size");
  const int64_t evicted_before = evicted_counter.value();

  for (ObjectId o = 0; o < 8; ++o) {
    ASSERT_TRUE(monitor.Ingest({o, 0, 0.0}).ok());
  }
  EXPECT_EQ(monitor.TrackCount(), 8u);
  EXPECT_DOUBLE_EQ(size_gauge.value(), 8.0);

  // Ingest-path sweep: one fresh reading far past the lag evicts the
  // other seven lazily, inside the same shard lock acquisition.
  ASSERT_TRUE(monitor.Ingest({0, 0, 200.0}).ok());
  EXPECT_EQ(monitor.TrackCount(), 1u);
  EXPECT_DOUBLE_EQ(size_gauge.value(), 1.0);
  EXPECT_EQ(evicted_counter.value() - evicted_before, 7);

  // Query-path eviction: a second monitor whose sweep never fires still
  // drops expired tracks during the tally recompute walk.
  StreamingOptions multi = options;
  multi.shards = 8;
  StreamingMonitor monitor2(deployment, pois, multi);
  for (ObjectId o = 0; o < 8; ++o) {
    ASSERT_TRUE(monitor2.Ingest({o, 0, 0.0}).ok());
  }
  ASSERT_TRUE(monitor2.Ingest({0, 1, 200.0}).ok());
  EXPECT_GT(monitor2.TrackCount(), 1u);  // other shards never swept
  (void)monitor2.CurrentTopK(monitor2.now(), 2);
  EXPECT_EQ(monitor2.TrackCount(), 1u);
  EXPECT_DOUBLE_EQ(size_gauge.value(), 1.0);
}

// A tripped QueryControl aborts CurrentTopK without publishing a
// half-computed tally: the next uncontrolled query is exact.
TEST(ShardControlTest, AbortedTopKPublishesNothing) {
  const StreamScenario s = MakeScenario(6001);
  if (s.readings.empty()) GTEST_SKIP();

  StreamingMonitor monitor(s.deployment, s.pois, MakeOptions(4, false));
  StreamingMonitor witness(s.deployment, s.pois, MakeOptions(4, false));
  for (const RawReading& r : s.readings) {
    ASSERT_TRUE(monitor.Ingest(r).ok());
    ASSERT_TRUE(witness.Ingest(r).ok());
  }
  CancelToken cancel;
  cancel.Cancel();  // tripped before the query even starts
  QueryControl control(Deadline::Infinite(), &cancel);
  (void)monitor.CurrentTopK(monitor.now(), 5, &control);
  EXPECT_TRUE(control.Aborted());
  EXPECT_EQ(control.reason(), AbortReason::kCancelled);
  // LiveRegion under a tripped control is empty, not stale.
  QueryControl region_control(Deadline::Infinite(), &cancel);
  EXPECT_TRUE(
      monitor.LiveRegion(s.readings[0].object_id, monitor.now(),
                         &region_control)
          .IsEmpty());
  ExpectSameTopK(monitor.CurrentTopK(monitor.now(),
                                     static_cast<int>(s.pois.size())),
                 witness.CurrentTopK(witness.now(),
                                     static_cast<int>(s.pois.size())),
                 "post-abort vs witness");
}

// The headline concurrency shape: ingest threads (disjoint object sets,
// so per-object time order holds) racing query threads across shards.
// TSan checks the synchronization; the final differential checks that the
// races never corrupted state.
TEST(ShardStressTest, ConcurrentIngestVersusQuery) {
  Deployment deployment;
  for (int d = 0; d < 6; ++d) {
    deployment.AddDevice(Circle{{static_cast<double>(8 * d), 0}, 1.5});
  }
  deployment.BuildIndex();
  PoiSet pois;
  for (int32_t p = 0; p < 6; ++p) {
    const double x = 8.0 * p;
    pois.push_back(
        Poi{p, "poi", Polygon::Rectangle(x - 3, -3, x + 3, 3)});
  }

  constexpr int kIngestThreads = 4;
  constexpr int kStressObjects = 16;
  constexpr int kReadingsPerObject = 200;
  StreamingMonitor monitor(deployment, pois, MakeOptions(8, true));

  std::vector<RawReading> all;
  for (ObjectId o = 0; o < kStressObjects; ++o) {
    for (int i = 0; i < kReadingsPerObject; ++i) {
      // Wander across devices; each object advances its own clock.
      const DeviceId device =
          static_cast<DeviceId>((o + i / 20) % 6);
      all.push_back({o, device, static_cast<double>(i) + 0.1 * (o % 7)});
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < kIngestThreads; ++w) {
    workers.emplace_back([&, w] {
      for (const RawReading& r : all) {
        if (r.object_id % kIngestThreads != w) continue;
        ASSERT_TRUE(monitor.Ingest(r).ok());
      }
    });
  }
  for (int q = 0; q < 2; ++q) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const Timestamp t = monitor.now();
        const auto top = monitor.CurrentTopK(t, 3);
        ASSERT_EQ(top.size(), 3u);
        for (size_t i = 1; i < top.size(); ++i) {
          ASSERT_LE(top[i].flow, top[i - 1].flow);
        }
        (void)monitor.LiveRegion(static_cast<ObjectId>(top[0].poi), t);
        (void)monitor.ActiveObjects(t);
      }
    });
  }
  for (int w = 0; w < kIngestThreads; ++w) workers[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t w = kIngestThreads; w < workers.size(); ++w) {
    workers[w].join();
  }

  // The interleaving was nondeterministic; the end state must not be.
  StreamingMonitor serial(deployment, pois, MakeOptions(1, false));
  std::stable_sort(all.begin(), all.end(),
                   [](const RawReading& a, const RawReading& b) {
                     return a.t < b.t;
                   });
  for (const RawReading& r : all) {
    ASSERT_TRUE(serial.Ingest(r).ok());
  }
  ASSERT_EQ(monitor.now(), serial.now());
  EXPECT_EQ(monitor.TrackCount(), serial.TrackCount());
  ExpectSameTopK(monitor.CurrentTopK(monitor.now(), 6),
                 serial.CurrentTopK(serial.now(), 6),
                 "concurrent vs serial replay");
}

}  // namespace
}  // namespace indoorflow
