// Concurrency stress tests. These are the dynamic half of the repo's
// thread-safety story: the static half is Clang's -Wthread-safety analysis
// over the INDOORFLOW_GUARDED_BY annotations in
// src/common/thread_annotations.h, and this binary runs under
// ThreadSanitizer in CI to validate the same
// invariants at runtime. The tests are also meaningful without TSan: they
// assert that concurrent results are bit-identical to serial ones, i.e.
// that parallelism never changes answers (accumulation-order independence).

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/flow_matrix.h"
#include "src/core/streaming.h"
#include "src/index/dynamic_rtree.h"

namespace indoorflow {
namespace {

// Worker count for the stress tests: enough to interleave on any machine,
// independent of hardware_concurrency() so single-core CI still races.
constexpr int kStressThreads = 8;

bool SameFlows(const std::vector<PoiFlow>& a, const std::vector<PoiFlow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    // Bit-identical, not approximately equal: the parallel paths must not
    // reorder any floating-point accumulation.
    if (a[i].poi != b[i].poi || a[i].flow != b[i].flow) return false;
  }
  return true;
}

class ConcurrencyFixture : public ::testing::Test {
 protected:
  ConcurrencyFixture() {
    OfficeDatasetConfig config;
    config.num_objects = 20;
    config.duration = 600.0;
    config.seed = 99;
    dataset_ = GenerateOfficeDataset(config);
    engine_ = std::make_unique<QueryEngine>(dataset_, EngineConfig{});
  }

  Dataset dataset_;
  std::unique_ptr<QueryEngine> engine_;
};

// N threads issue mixed snapshot/interval top-k queries against one shared
// engine; every concurrent answer must equal the serial one. The first
// full-set query also races the lazy AllPoiTree cache initialization.
TEST_F(ConcurrencyFixture, MixedQueriesOnSharedEngine) {
  const std::vector<Timestamp> times = {60.0, 150.0, 300.0, 450.0, 590.0};
  std::vector<std::vector<PoiFlow>> serial_snapshot;
  std::vector<std::vector<PoiFlow>> serial_interval;
  serial_snapshot.reserve(times.size());
  serial_interval.reserve(times.size());
  for (const Timestamp t : times) {
    serial_snapshot.push_back(engine_->SnapshotTopK(t, 5, Algorithm::kJoin));
    serial_interval.push_back(
        engine_->IntervalTopK(t, t + 120.0, 5, Algorithm::kIterative));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kStressThreads);
  for (int w = 0; w < kStressThreads; ++w) {
    workers.emplace_back([&, w] {
      for (size_t i = 0; i < times.size(); ++i) {
        const size_t q = (i + static_cast<size_t>(w)) % times.size();
        const auto snapshot =
            engine_->SnapshotTopK(times[q], 5, Algorithm::kJoin);
        const auto interval = engine_->IntervalTopK(
            times[q], times[q] + 120.0, 5, Algorithm::kIterative);
        if (!SameFlows(snapshot, serial_snapshot[q]) ||
            !SameFlows(interval, serial_interval[q])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// The worker-pool determinism gap (per-thread results must not depend on
// the pool size): snapshot batch answers are bit-identical for one worker
// and for the hardware concurrency.
TEST_F(ConcurrencyFixture, BatchResultsIndependentOfThreadCount) {
  std::vector<Timestamp> times;
  for (double t = 30.0; t < 600.0; t += 30.0) times.push_back(t);
  const auto one = engine_->SnapshotTopKBatch(times, 5, Algorithm::kJoin,
                                              nullptr, /*threads=*/1);
  const int hw =
      static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
  const auto many =
      engine_->SnapshotTopKBatch(times, 5, Algorithm::kJoin, nullptr, hw);
  ASSERT_EQ(one.size(), many.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_TRUE(SameFlows(one[i], many[i])) << "bucket " << i;
  }
}

// Same property for interval queries, driven from raw threads (there is no
// interval batch API): concurrent answers equal the single-thread ones.
TEST_F(ConcurrencyFixture, IntervalResultsIndependentOfThreadCount) {
  const auto serial =
      engine_->IntervalTopK(100.0, 500.0, 8, Algorithm::kJoin);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kStressThreads);
  for (int w = 0; w < kStressThreads; ++w) {
    workers.emplace_back([&] {
      const auto got =
          engine_->IntervalTopK(100.0, 500.0, 8, Algorithm::kJoin);
      if (!SameFlows(got, serial)) mismatches.fetch_add(1);
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// FlowMatrix materialization partitions rows across its worker pool; the
// parallel build must equal the serial one exactly.
TEST_F(ConcurrencyFixture, FlowMatrixBuildIndependentOfThreadCount) {
  FlowMatrixOptions serial_options;
  serial_options.bucket_seconds = 60.0;
  serial_options.threads = 1;
  const FlowMatrix one = FlowMatrix::Build(*engine_, 0.0, 600.0,
                                           serial_options);
  FlowMatrixOptions parallel_options = serial_options;
  parallel_options.threads = kStressThreads;
  const FlowMatrix many = FlowMatrix::Build(*engine_, 0.0, 600.0,
                                            parallel_options);
  ASSERT_EQ(one.num_buckets(), many.num_buckets());
  ASSERT_EQ(one.num_pois(), many.num_pois());
  for (size_t b = 0; b < one.num_buckets(); ++b) {
    for (size_t p = 0; p < one.num_pois(); ++p) {
      EXPECT_EQ(one.FlowAt(b, static_cast<PoiId>(p)),
                many.FlowAt(b, static_cast<PoiId>(p)))
          << "bucket " << b << " poi " << p;
    }
  }
}

// Live monitor: one ingest thread races many query threads. Queries may see
// the stream at any prefix, so only invariants are asserted (no crashes, no
// torn state — TSan checks the memory model side).
TEST(StreamingConcurrencyTest, IngestVersusQuery) {
  Deployment deployment;
  deployment.AddDevice(Circle{{5, 8}, 1.0});
  deployment.AddDevice(Circle{{15, 8}, 1.0});
  deployment.BuildIndex();
  PoiSet pois;
  pois.push_back(Poi{0, "room_a", Polygon::Rectangle(0, 4, 10, 12)});
  pois.push_back(Poi{1, "room_b", Polygon::Rectangle(10, 4, 20, 12)});
  StreamingOptions options;
  options.vmax = 1.0;
  options.expiry_seconds = 1000.0;
  StreamingMonitor monitor(deployment, pois, options);

  constexpr int kObjects = 6;
  constexpr double kEnd = 200.0;
  std::atomic<bool> done{false};
  std::thread ingest([&] {
    for (double t = 0.0; t <= kEnd; t += 1.0) {
      for (ObjectId o = 0; o < kObjects; ++o) {
        const DeviceId device = (o + static_cast<int>(t / 50.0)) % 2;
        ASSERT_TRUE(monitor.Ingest({o, device, t}).ok());
      }
    }
    done.store(true);
  });
  std::vector<std::thread> queriers;
  queriers.reserve(kStressThreads);
  for (int w = 0; w < kStressThreads; ++w) {
    queriers.emplace_back([&] {
      while (!done.load()) {
        const Timestamp now = monitor.now();
        const auto top = monitor.CurrentTopK(now, 2);
        ASSERT_LE(top.size(), 2u);
        for (const PoiFlow& f : top) ASSERT_GE(f.flow, 0.0);
        ASSERT_LE(monitor.ActiveObjects(now),
                  static_cast<size_t>(kObjects));
        (void)monitor.LiveRegion(0, now);
      }
    });
  }
  ingest.join();
  for (std::thread& t : queriers) t.join();

  // The final state is the full stream regardless of interleaving.
  EXPECT_DOUBLE_EQ(monitor.now(), kEnd);
  EXPECT_EQ(monitor.ActiveObjects(kEnd), static_cast<size_t>(kObjects));
}

// DynamicRTree is internally synchronized: concurrent inserters and
// readers; every inserted id is eventually queryable and invariants hold
// throughout.
TEST(DynamicRTreeConcurrencyTest, ConcurrentInsertAndQuery) {
  DynamicRTree tree(6);
  constexpr int kInserters = 4;
  constexpr int kPerThread = 200;
  std::atomic<bool> done{false};
  std::vector<std::thread> inserters;
  inserters.reserve(kInserters);
  for (int w = 0; w < kInserters; ++w) {
    inserters.emplace_back([&tree, w] {
      for (int i = 0; i < kPerThread; ++i) {
        const int32_t id = w * kPerThread + i;
        const double x = (id % 40) * 2.0;
        const double y = (id / 40) * 2.0;
        tree.Insert(id, Box{x, y, x + 1.0, y + 1.0});
      }
    });
  }
  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int w = 0; w < 2; ++w) {
    readers.emplace_back([&] {
      std::vector<int32_t> hits;
      while (!done.load()) {
        tree.IntersectionQuery(Box{0.0, 0.0, 100.0, 100.0}, &hits);
        ASSERT_LE(hits.size(),
                  static_cast<size_t>(kInserters * kPerThread));
        ASSERT_TRUE(tree.CheckInvariants().ok());
      }
    });
  }
  for (std::thread& t : inserters) t.join();
  done.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(tree.size(), static_cast<size_t>(kInserters * kPerThread));
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<int32_t> all;
  tree.IntersectionQuery(tree.Bounds(), &all);
  EXPECT_EQ(all.size(), static_cast<size_t>(kInserters * kPerThread));
}

}  // namespace
}  // namespace indoorflow
