// Tests for the shared work scheduler (src/common/executor.h): exactly-once
// index coverage, thread resolution, deadlock freedom under nesting, and —
// as ExecutorConcurrencyTest, which runs under ThreadSanitizer in CI — full
// engine queries racing on a hot pool with forced intra-query parallelism.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/executor.h"
#include "src/common/log.h"
#include "src/core/engine.h"
#include "src/core/flow_matrix.h"
#include "src/core/streaming.h"

namespace indoorflow {
namespace {

TEST(ExecutorTest, ResolveThreads) {
  EXPECT_EQ(Executor::ResolveThreads(1), 1);
  EXPECT_EQ(Executor::ResolveThreads(7), 7);
  EXPECT_EQ(Executor::ResolveThreads(Executor::kMaxThreads + 5),
            Executor::kMaxThreads);
  const int hw = Executor::ResolveThreads(0);
  EXPECT_GE(hw, 1);
  EXPECT_LE(hw, Executor::kMaxThreads);
  // All non-positive requests resolve the same way.
  EXPECT_EQ(Executor::ResolveThreads(-3), hw);
}

TEST(ExecutorTest, ThreadsFromEnvParsesStrictlyAndWarnsOnGarbage) {
  const int hw = Executor::ResolveThreads(0);

  // Valid values: positive integers (clamped), "0" = hardware request.
  EXPECT_EQ(Executor::ThreadsFromEnv("1"), 1);
  EXPECT_EQ(Executor::ThreadsFromEnv("7"), 7);
  EXPECT_EQ(Executor::ThreadsFromEnv("99999"), Executor::kMaxThreads);
  EXPECT_EQ(Executor::ThreadsFromEnv("0"), hw);
  EXPECT_EQ(Executor::ThreadsFromEnv("  3"), 3);  // strtol leniency

  // Unset / empty: hardware fallback without a warning.
  EXPECT_EQ(Executor::ThreadsFromEnv(nullptr), hw);
  EXPECT_EQ(Executor::ThreadsFromEnv(""), hw);

  // Garbage must not be silently truncated to a prefix (the old atoi
  // behavior) or silently ignored: it falls back to hardware concurrency
  // and logs a structured warning naming the offending value.
  const std::string path =
      ::testing::TempDir() + "/indoorflow_executor_env.log";
  std::remove(path.c_str());
  ASSERT_TRUE(SetLogFile(path).ok());
  SetLogFormat(LogFormat::kText);
  SetLogLevel(LogLevel::kWarn);
  for (const char* bad :
       {"abc", "8x", "2.5", "-4", "999999999999999999999"}) {
    EXPECT_EQ(Executor::ThreadsFromEnv(bad), hw) << bad;
  }
  SetLogLevel(LogLevel::kInfo);
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  const std::string log = content.str();
  EXPECT_NE(log.find("INDOORFLOW_THREADS"), std::string::npos) << log;
  EXPECT_NE(log.find("value=abc"), std::string::npos) << log;
  EXPECT_NE(log.find("value=-4"), std::string::npos) << log;
}

TEST(ExecutorTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                         size_t{1000}}) {
    for (const int parallelism : {1, 2, 8, 33}) {
      std::vector<std::atomic<int>> counts(n);
      for (auto& c : counts) c.store(0);
      Executor::Default().ParallelFor(n, parallelism, [&counts](size_t i) {
        counts[i].fetch_add(1);
      });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(counts[i].load(), 1)
            << "n=" << n << " parallelism=" << parallelism << " i=" << i;
      }
    }
  }
}

TEST(ExecutorTest, ParallelForReportsLaneCount) {
  const auto noop = [](size_t) {};
  // Serial cases collapse to one lane.
  EXPECT_EQ(Executor::Default().ParallelFor(10, 1, noop), 1);
  EXPECT_EQ(Executor::Default().ParallelFor(0, 8, noop), 1);
  EXPECT_EQ(Executor::Default().ParallelFor(1, 8, noop), 1);
  // Lanes never exceed the item count or the requested parallelism.
  EXPECT_EQ(Executor::Default().ParallelFor(3, 8, noop), 3);
  EXPECT_EQ(Executor::Default().ParallelFor(100, 4, noop), 4);
}

// Nested fan-out must not deadlock even when every pool worker is busy:
// the calling thread always participates, so each batch has at least one
// lane that is not waiting on the queue.
TEST(ExecutorTest, NestedParallelForCompletes) {
  std::atomic<int> inner_total{0};
  Executor::Default().ParallelFor(8, 8, [&inner_total](size_t) {
    Executor::Default().ParallelFor(8, 8, [&inner_total](size_t) {
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

// A private pool with explicit worker counts behaves like the default one.
TEST(ExecutorTest, PrivatePoolRunsBatches) {
  Executor pool(3);
  EXPECT_EQ(pool.worker_count(), 3);
  std::vector<std::atomic<int>> counts(50);
  for (auto& c : counts) c.store(0);
  const int lanes = pool.ParallelFor(counts.size(), 8, [&counts](size_t i) {
    counts[i].fetch_add(1);
  });
  EXPECT_EQ(lanes, 8);
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

bool SameFlows(const std::vector<PoiFlow>& a, const std::vector<PoiFlow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    // Bit-identical: intra-query fan-out must not reorder accumulation.
    if (a[i].poi != b[i].poi || a[i].flow != b[i].flow) return false;
  }
  return true;
}

// The TSan stress subject: several threads issue queries whose per-object
// work fans across the shared pool (threads=8, parallel_threshold=1 forces
// the parallel path even on this small dataset), while another thread
// ingests into a StreamingMonitor that also uses engine machinery. Answers
// must stay bit-identical to a fully serial engine throughout.
TEST(ExecutorConcurrencyTest, ParallelQueriesRaceOnHotPool) {
  OfficeDatasetConfig config;
  config.num_objects = 20;
  config.duration = 600.0;
  config.seed = 99;
  const Dataset dataset = GenerateOfficeDataset(config);

  EngineConfig serial_config;
  serial_config.threads = 1;
  const QueryEngine serial(dataset, serial_config);

  EngineConfig parallel_config;
  parallel_config.threads = 8;
  parallel_config.parallel_threshold = 1;
  const QueryEngine parallel(dataset, parallel_config);

  const std::vector<Timestamp> times = {60.0, 150.0, 300.0, 450.0, 590.0};
  std::vector<std::vector<PoiFlow>> want_snapshot;
  std::vector<std::vector<PoiFlow>> want_interval;
  for (const Timestamp t : times) {
    want_snapshot.push_back(serial.SnapshotTopK(t, 5, Algorithm::kJoin));
    want_interval.push_back(
        serial.IntervalTopK(t, t + 120.0, 5, Algorithm::kIterative));
  }

  std::atomic<int> mismatches{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  constexpr int kQueryThreads = 6;
  workers.reserve(kQueryThreads + 1);
  for (int w = 0; w < kQueryThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < 3; ++round) {
        for (size_t i = 0; i < times.size(); ++i) {
          const size_t q = (i + static_cast<size_t>(w)) % times.size();
          if (!SameFlows(parallel.SnapshotTopK(times[q], 5, Algorithm::kJoin),
                         want_snapshot[q]) ||
              !SameFlows(parallel.IntervalTopK(times[q], times[q] + 120.0, 5,
                                               Algorithm::kIterative),
                         want_interval[q])) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  // Ingest into an independent monitor while the pool is hot, so executor
  // tasks interleave with streaming's own locking.
  workers.emplace_back([&done] {
    Deployment deployment;
    deployment.AddDevice(Circle{{5, 8}, 1.0});
    deployment.AddDevice(Circle{{15, 8}, 1.0});
    deployment.BuildIndex();
    PoiSet pois;
    pois.push_back(Poi{0, "room_a", Polygon::Rectangle(0, 4, 10, 12)});
    pois.push_back(Poi{1, "room_b", Polygon::Rectangle(10, 4, 20, 12)});
    StreamingOptions options;
    options.vmax = 1.0;
    StreamingMonitor monitor(deployment, pois, options);
    double t = 0.0;
    while (!done.load()) {
      for (ObjectId o = 0; o < 4; ++o) {
        ASSERT_TRUE(monitor.Ingest({o, o % 2, t}).ok());
      }
      (void)monitor.CurrentTopK(t, 2);
      t += 1.0;
    }
  });
  for (size_t w = 0; w + 1 < workers.size(); ++w) workers[w].join();
  done.store(true);
  workers.back().join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Batch fan-out and FlowMatrix materialization share the pool with query
// fan-out; running them concurrently must not corrupt either result.
TEST(ExecutorConcurrencyTest, BatchAndMatrixShareThePool) {
  OfficeDatasetConfig config;
  config.num_objects = 12;
  config.duration = 600.0;
  config.seed = 321;
  const Dataset dataset = GenerateOfficeDataset(config);
  EngineConfig engine_config;
  engine_config.threads = 4;
  engine_config.parallel_threshold = 1;
  const QueryEngine engine(dataset, engine_config);

  std::vector<Timestamp> times;
  for (double t = 30.0; t < 600.0; t += 30.0) times.push_back(t);
  const auto want_batch =
      engine.SnapshotTopKBatch(times, 5, Algorithm::kJoin, nullptr, 1);
  FlowMatrixOptions matrix_options;
  matrix_options.bucket_seconds = 60.0;
  matrix_options.threads = 1;
  const FlowMatrix want_matrix =
      FlowMatrix::Build(engine, 0.0, 600.0, matrix_options);

  std::atomic<int> mismatches{0};
  std::thread batcher([&] {
    for (int round = 0; round < 3; ++round) {
      const auto got =
          engine.SnapshotTopKBatch(times, 5, Algorithm::kJoin, nullptr, 8);
      if (got.size() != want_batch.size()) {
        mismatches.fetch_add(1);
        continue;
      }
      for (size_t i = 0; i < got.size(); ++i) {
        if (!SameFlows(got[i], want_batch[i])) mismatches.fetch_add(1);
      }
    }
  });
  std::thread builder([&] {
    FlowMatrixOptions options = matrix_options;
    options.threads = 8;
    for (int round = 0; round < 3; ++round) {
      const FlowMatrix got = FlowMatrix::Build(engine, 0.0, 600.0, options);
      for (size_t b = 0; b < got.num_buckets(); ++b) {
        for (size_t p = 0; p < got.num_pois(); ++p) {
          if (got.FlowAt(b, static_cast<PoiId>(p)) !=
              want_matrix.FlowAt(b, static_cast<PoiId>(p))) {
            mismatches.fetch_add(1);
          }
        }
      }
    }
  });
  batcher.join();
  builder.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace indoorflow
