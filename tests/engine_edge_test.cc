// Edge-case behavior of the engine API: empty inputs, extreme parameters,
// and degenerate datasets must not crash and must return sensible results.

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/timeline.h"
#include "src/indoor/plan_builders.h"

namespace indoorflow {
namespace {

class EdgeFixture : public ::testing::Test {
 protected:
  EdgeFixture() : built_(BuildTinyPlan()), graph_(built_.plan) {
    deployment_.AddDevice(Circle{{5, 8}, 1.0});
    deployment_.AddDevice(Circle{{15, 8}, 1.0});
    deployment_.BuildIndex();
    pois_.push_back(Poi{0, "room_a", Polygon::Rectangle(0, 4, 10, 12)});
    pois_.push_back(Poi{1, "room_b", Polygon::Rectangle(10, 4, 20, 12)});
  }

  QueryEngine MakeEngine(const ObjectTrackingTable& table,
                         const PoiSet& pois) {
    EngineConfig config;
    config.vmax = 1.0;
    config.topology = TopologyMode::kPartition;
    return QueryEngine(built_.plan, graph_, deployment_, table, pois,
                       config);
  }

  BuiltPlan built_;
  DoorGraph graph_;
  Deployment deployment_;
  PoiSet pois_;
};

TEST_F(EdgeFixture, EmptyOtt) {
  ObjectTrackingTable empty;
  ASSERT_TRUE(empty.Finalize().ok());
  const QueryEngine engine = MakeEngine(empty, pois_);
  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    const auto snap = engine.SnapshotTopK(100.0, 2, algo);
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_DOUBLE_EQ(snap[0].flow, 0.0);
    const auto interval = engine.IntervalTopK(0.0, 100.0, 2, algo);
    ASSERT_EQ(interval.size(), 2u);
    EXPECT_DOUBLE_EQ(interval[0].flow, 0.0);
  }
}

TEST_F(EdgeFixture, EmptyPoiSet) {
  ObjectTrackingTable table;
  table.Append({0, 0, 0, 100});
  ASSERT_TRUE(table.Finalize().ok());
  const PoiSet no_pois;
  const QueryEngine engine = MakeEngine(table, no_pois);
  EXPECT_TRUE(engine.SnapshotTopK(50.0, 5, Algorithm::kJoin).empty());
  EXPECT_TRUE(
      engine.IntervalTopK(0.0, 100.0, 5, Algorithm::kIterative).empty());
}

TEST_F(EdgeFixture, ZeroAndNegativeK) {
  ObjectTrackingTable table;
  table.Append({0, 0, 0, 100});
  ASSERT_TRUE(table.Finalize().ok());
  const QueryEngine engine = MakeEngine(table, pois_);
  EXPECT_TRUE(engine.SnapshotTopK(50.0, 0, Algorithm::kJoin).empty());
  EXPECT_TRUE(engine.SnapshotTopK(50.0, -3, Algorithm::kIterative).empty());
  EXPECT_TRUE(engine.IntervalTopK(0.0, 50.0, 0, Algorithm::kJoin).empty());
}

TEST_F(EdgeFixture, KLargerThanSubset) {
  ObjectTrackingTable table;
  table.Append({0, 0, 0, 100});
  ASSERT_TRUE(table.Finalize().ok());
  const QueryEngine engine = MakeEngine(table, pois_);
  const std::vector<PoiId> one = {1};
  const auto top = engine.SnapshotTopK(50.0, 10, Algorithm::kJoin, &one);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].poi, 1);
}

TEST_F(EdgeFixture, EmptySubset) {
  ObjectTrackingTable table;
  table.Append({0, 0, 0, 100});
  ASSERT_TRUE(table.Finalize().ok());
  const QueryEngine engine = MakeEngine(table, pois_);
  const std::vector<PoiId> none;
  EXPECT_TRUE(
      engine.SnapshotTopK(50.0, 5, Algorithm::kJoin, &none).empty());
  EXPECT_TRUE(
      engine.IntervalTopK(0.0, 50.0, 5, Algorithm::kIterative, &none)
          .empty());
}

TEST_F(EdgeFixture, QueryTimesOutsideData) {
  ObjectTrackingTable table;
  table.Append({0, 0, 100, 200});
  ASSERT_TRUE(table.Finalize().ok());
  const QueryEngine engine = MakeEngine(table, pois_);
  for (const Timestamp t : {-50.0, 0.0, 99.99, 200.01, 1e9}) {
    const auto top = engine.SnapshotTopK(t, 2, Algorithm::kIterative);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_DOUBLE_EQ(top[0].flow, 0.0) << "t=" << t;
  }
  // Interval entirely outside the data.
  const auto before = engine.IntervalTopK(-100.0, -10.0, 2,
                                          Algorithm::kJoin);
  EXPECT_DOUBLE_EQ(before[0].flow, 0.0);
  const auto after = engine.IntervalTopK(300.0, 400.0, 2, Algorithm::kJoin);
  EXPECT_DOUBLE_EQ(after[0].flow, 0.0);
}

TEST_F(EdgeFixture, ZeroLengthInterval) {
  ObjectTrackingTable table;
  table.Append({0, 0, 0, 100});
  ASSERT_TRUE(table.Finalize().ok());
  const QueryEngine engine = MakeEngine(table, pois_);
  // [t, t] behaves like a snapshot-ish query and must agree across
  // algorithms.
  const auto iter = engine.IntervalTopK(50.0, 50.0, 2,
                                        Algorithm::kIterative);
  const auto join = engine.IntervalTopK(50.0, 50.0, 2, Algorithm::kJoin);
  ASSERT_EQ(iter.size(), join.size());
  for (size_t i = 0; i < iter.size(); ++i) {
    EXPECT_NEAR(iter[i].flow, join[i].flow, 1e-9);
  }
  EXPECT_GT(iter[0].flow, 0.0);  // object is in room_a's device
}

TEST_F(EdgeFixture, PointRecords) {
  // Records with ts == te (single-reading detections).
  ObjectTrackingTable table;
  table.Append({0, 0, 50, 50});
  table.Append({0, 1, 80, 80});
  ASSERT_TRUE(table.Finalize().ok());
  const QueryEngine engine = MakeEngine(table, pois_);
  const auto at_record = engine.SnapshotTopK(50.0, 2, Algorithm::kJoin);
  EXPECT_GT(at_record[0].flow, 0.0);
  const auto in_gap = engine.SnapshotTopK(65.0, 2, Algorithm::kIterative);
  const auto in_gap_join = engine.SnapshotTopK(65.0, 2, Algorithm::kJoin);
  for (size_t i = 0; i < in_gap.size(); ++i) {
    EXPECT_NEAR(in_gap[i].flow, in_gap_join[i].flow, 1e-9);
  }
}

TEST_F(EdgeFixture, SingleObjectSingleDevicePoiOutsideReach) {
  // POI far from any possible position: flow exactly 0 for both.
  ObjectTrackingTable table;
  table.Append({0, 0, 0, 100});
  ASSERT_TRUE(table.Finalize().ok());
  PoiSet pois;
  pois.push_back(Poi{0, "far", Polygon::Rectangle(18, 0, 20, 2)});
  const QueryEngine engine = MakeEngine(table, pois);
  EXPECT_DOUBLE_EQ(
      engine.SnapshotTopK(50.0, 1, Algorithm::kIterative)[0].flow, 0.0);
  EXPECT_DOUBLE_EQ(engine.SnapshotTopK(50.0, 1, Algorithm::kJoin)[0].flow,
                   0.0);
}

TEST_F(EdgeFixture, DegenerateIntervalMatchesSnapshotExactly) {
  // IntervalTopK(t, t) delegates its region derivation to the snapshot
  // path, so it agrees with SnapshotTopK(t) bit-for-bit — including at
  // record boundaries and in detection gaps, for both algorithms.
  ObjectTrackingTable table;
  table.Append({0, 0, 0, 40});
  table.Append({0, 1, 60, 100});
  table.Append({1, 1, 10, 80});
  ASSERT_TRUE(table.Finalize().ok());
  const QueryEngine engine = MakeEngine(table, pois_);
  for (const Timestamp t : {5.0, 40.0, 50.0, 60.0, 90.0}) {
    for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
      const auto snap = engine.SnapshotTopK(t, 2, algo);
      const auto interval = engine.IntervalTopK(t, t, 2, algo);
      ASSERT_EQ(snap.size(), interval.size()) << "t=" << t;
      for (size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(interval[i].poi, snap[i].poi) << "t=" << t;
        EXPECT_EQ(interval[i].flow, snap[i].flow) << "t=" << t;
      }
    }
  }
}

TEST_F(EdgeFixture, DegeneratePoiDoesNotPoisonDensityRanking) {
  // A zero-area POI in the set used to zero the join's subtree min-area
  // aggregate, turning the density bound into 0 and silently pruning every
  // POI sharing the subtree. Degenerate areas now demote to 0 at load time
  // and the bound ignores them, so both algorithms agree and the sliver
  // itself ranks with density 0.
  ObjectTrackingTable table;
  table.Append({0, 0, 0, 100});
  table.Append({1, 1, 0, 100});
  ASSERT_TRUE(table.Finalize().ok());
  PoiSet pois = pois_;
  pois.push_back(Poi{2, "sliver", Polygon::Rectangle(4, 6, 4, 10)});
  const QueryEngine engine = MakeEngine(table, pois);

  const auto iter =
      engine.SnapshotDensityTopK(50.0, 3, Algorithm::kIterative);
  const auto join = engine.SnapshotDensityTopK(50.0, 3, Algorithm::kJoin);
  ASSERT_EQ(iter.size(), 3u);
  ASSERT_EQ(join.size(), 3u);
  for (size_t i = 0; i < iter.size(); ++i) {
    EXPECT_EQ(join[i].poi, iter[i].poi) << "rank " << i;
    EXPECT_EQ(join[i].flow, iter[i].flow) << "rank " << i;
    EXPECT_TRUE(std::isfinite(iter[i].flow)) << "rank " << i;
  }
  // The populated rooms rank with positive density; the sliver is last
  // with exactly 0.
  EXPECT_GT(iter[0].flow, 0.0);
  EXPECT_GT(iter[1].flow, 0.0);
  EXPECT_EQ(iter[2].poi, 2);
  EXPECT_EQ(iter[2].flow, 0.0);

  // Interval density over the same data must agree across algorithms too.
  const auto iter_interval =
      engine.IntervalDensityTopK(20.0, 80.0, 3, Algorithm::kIterative);
  const auto join_interval =
      engine.IntervalDensityTopK(20.0, 80.0, 3, Algorithm::kJoin);
  ASSERT_EQ(iter_interval.size(), join_interval.size());
  for (size_t i = 0; i < iter_interval.size(); ++i) {
    EXPECT_EQ(join_interval[i].poi, iter_interval[i].poi) << "rank " << i;
    EXPECT_EQ(join_interval[i].flow, iter_interval[i].flow) << "rank " << i;
    EXPECT_TRUE(std::isfinite(iter_interval[i].flow)) << "rank " << i;
  }
}

TEST_F(EdgeFixture, TimelineOnEmptyData) {
  ObjectTrackingTable empty;
  ASSERT_TRUE(empty.Finalize().ok());
  const QueryEngine engine = MakeEngine(empty, pois_);
  const auto series = FlowTimeline(engine, 0, 0.0, 100.0, 25.0);
  ASSERT_EQ(series.size(), 5u);
  for (const TimelinePoint& p : series) {
    EXPECT_DOUBLE_EQ(p.flow, 0.0);
  }
}

}  // namespace
}  // namespace indoorflow
