// Tests for the common layer: Status/Result and the deterministic PRNG.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/status.h"

namespace indoorflow {
namespace {

TEST(StatusTest, OkState) {
  const Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.ToString(), "OK");
  EXPECT_TRUE(ok.message().empty());
}

TEST(StatusTest, ErrorStates) {
  const Status err = Status::InvalidArgument("bad k");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.message(), "bad k");
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad k");

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, ValuePath) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorPath) {
  const Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> moved = std::move(r).value();
  EXPECT_EQ(*moved, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(43);
  Rng d(42);
  int differs = 0;
  for (int i = 0; i < 100; ++i) {
    differs += c.Next() != d.Next() ? 1 : 0;
  }
  EXPECT_GT(differs, 95);
}

TEST(RngTest, UniformDoubleRangeAndMean) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  // Mean of U[0,1): 0.5 +- ~5 sigma of 1/sqrt(12 n).
  EXPECT_NEAR(sum / n, 0.5, 5.0 / std::sqrt(12.0 * n));
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(10ULL);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit

  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3,
              5.0 * std::sqrt(0.3 * 0.7 / n));
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  // Exponential(mean 4): sd 4, so 5 sigma of the mean estimate.
  EXPECT_NEAR(sum / n, 4.0, 5.0 * 4.0 / std::sqrt(n));
}

TEST(CheckDeathTest, FailureMessageNamesFileLineAndCondition) {
  // The message format is load-bearing: "INDOORFLOW_CHECK failed at
  // <file>:<line>: <condition>". Operators grep logs for it.
  EXPECT_DEATH(INDOORFLOW_CHECK(1 + 1 == 3),
               "INDOORFLOW_CHECK failed at .*common_test\\.cc:[0-9]+: "
               "1 \\+ 1 == 3");
}

TEST(CheckDeathTest, ActiveInEveryBuildType) {
  // Unlike assert(), INDOORFLOW_CHECK must not compile away under NDEBUG:
  // it guards internal invariants in release binaries too. The default
  // CMake build type is Release (NDEBUG defined), so this death test
  // passing there proves the check stayed active.
  const volatile bool always_false = false;
  EXPECT_DEATH(INDOORFLOW_CHECK(always_false), "INDOORFLOW_CHECK failed");
#ifdef NDEBUG
  // Double-check the premise: this TU really was built with NDEBUG.
  SUCCEED() << "verified under NDEBUG";
#endif
}

TEST(CheckDeathTest, PassingConditionDoesNotAbort) {
  INDOORFLOW_CHECK(2 + 2 == 4);  // must be a no-op
  SUCCEED();
}

TEST(RngTest, UniformRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.5, 7.5);
    ASSERT_GE(v, -2.5);
    ASSERT_LT(v, 7.5);
  }
}

}  // namespace
}  // namespace indoorflow
