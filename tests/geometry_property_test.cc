// Parameterized property tests for the geometry substrate: randomized CSG
// conservativeness, tessellation convergence, clipping algebra, integrator
// consistency against Monte-Carlo ground truth.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/geometry/area_integrator.h"
#include "src/geometry/clip.h"
#include "src/geometry/region.h"
#include "src/geometry/tessellate.h"

namespace indoorflow {
namespace {

// ---------------------------------------------------------------------------
// Tessellation convergence across radii and segment counts.

class TessellationSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(TessellationSweep, CircleAreaAndContainment) {
  const double radius = std::get<0>(GetParam());
  const int segments = std::get<1>(GetParam());
  const Circle c{{3.0, -2.0}, radius};
  const Polygon poly = TessellateCircle(c, segments);
  ASSERT_TRUE(poly.CheckInvariants().ok())
      << poly.CheckInvariants().message();
  // Inscribed n-gon area: n/2 * r^2 * sin(2π/n).
  const double expected =
      segments / 2.0 * radius * radius *
      std::sin(2.0 * std::numbers::pi / segments);
  EXPECT_NEAR(poly.Area(), expected, 1e-9 * expected + 1e-12);
  // All vertices on the circle boundary.
  for (const Point& v : poly.vertices()) {
    EXPECT_NEAR(Distance(v, c.center), radius, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RadiiAndSegments, TessellationSweep,
    ::testing::Combine(::testing::Values(0.5, 1.5, 4.0, 20.0),
                       ::testing::Values(8, 32, 128, 512)));

// ---------------------------------------------------------------------------
// Extended ellipse symmetries.

class EllipseSymmetry : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EllipseSymmetry, SwapAndReflectInvariance) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const Circle a{{rng.Uniform(-10, 10), 0.0}, rng.Uniform(0.5, 2.5)};
    const Circle b{{rng.Uniform(-10, 10), 0.0}, rng.Uniform(0.5, 2.5)};
    const double travel = rng.Uniform(0.0, 40.0);
    const ExtendedEllipse forward(a, b, travel);
    const ExtendedEllipse backward(b, a, travel);
    EXPECT_EQ(forward.EmptyBridge(), backward.EmptyBridge());
    for (int i = 0; i < 50; ++i) {
      const Point p{rng.Uniform(-20, 20), rng.Uniform(-20, 20)};
      // Swapping the two disks never changes membership.
      EXPECT_EQ(forward.Contains(p), backward.Contains(p));
      // Both foci are on the x-axis, so the region is mirror-symmetric.
      EXPECT_EQ(forward.Contains(p), forward.Contains({p.x, -p.y}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EllipseSymmetry,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Randomized CSG: classification must be conservative w.r.t. containment,
// and bounds must cover all members.

Region RandomPrimitive(Rng& rng) {
  switch (rng.UniformInt(4ULL)) {
    case 0:
      return Region::Make(
          Circle{{rng.Uniform(-10, 10), rng.Uniform(-10, 10)},
                 rng.Uniform(0.5, 4.0)});
    case 1: {
      const double inner = rng.Uniform(0.3, 2.0);
      return Region::Make(Ring{{rng.Uniform(-10, 10), rng.Uniform(-10, 10)},
                               inner, inner + rng.Uniform(0.5, 4.0)});
    }
    case 2: {
      const Circle a{{rng.Uniform(-10, 0), rng.Uniform(-5, 5)},
                     rng.Uniform(0.5, 2.0)};
      const Circle b{{rng.Uniform(0, 10), rng.Uniform(-5, 5)},
                     rng.Uniform(0.5, 2.0)};
      return Region::Make(
          ExtendedEllipse(a, b, rng.Uniform(0.0, 25.0)));
    }
    default: {
      const double x = rng.Uniform(-10, 8);
      const double y = rng.Uniform(-10, 8);
      return Region::Make(Polygon::Rectangle(
          x, y, x + rng.Uniform(0.5, 6), y + rng.Uniform(0.5, 6)));
    }
  }
}

Region RandomCsg(Rng& rng, int depth) {
  if (depth == 0) return RandomPrimitive(rng);
  switch (rng.UniformInt(3ULL)) {
    case 0:
      return Region::Intersect(RandomCsg(rng, depth - 1),
                               RandomCsg(rng, depth - 1));
    case 1:
      return Region::Union(RandomCsg(rng, depth - 1),
                           RandomCsg(rng, depth - 1));
    default:
      return Region::Subtract(RandomCsg(rng, depth - 1),
                              RandomCsg(rng, depth - 1));
  }
}

class CsgFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsgFuzz, ClassificationConservativeAndBoundsCover) {
  Rng rng(GetParam());
  const Region region = RandomCsg(rng, 3);
  ASSERT_TRUE(region.CheckInvariants().ok())
      << region.CheckInvariants().message();
  const Box bounds = region.Bounds();
  const Box domain{-15, -15, 15, 15};
  for (int i = 0; i < 2000; ++i) {
    const Point p{rng.Uniform(domain.min_x, domain.max_x),
                  rng.Uniform(domain.min_y, domain.max_y)};
    if (region.Contains(p)) {
      EXPECT_TRUE(bounds.Contains(p))
          << "member outside Bounds() at (" << p.x << "," << p.y << ")";
    }
  }
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Uniform(domain.min_x, domain.max_x);
    const double y = rng.Uniform(domain.min_y, domain.max_y);
    const Box box{x, y, x + rng.Uniform(0.05, 5), y + rng.Uniform(0.05, 5)};
    const BoxClass cls = region.Classify(box);
    if (cls == BoxClass::kBoundary) continue;
    for (int j = 0; j < 20; ++j) {
      const Point p{rng.Uniform(box.min_x, box.max_x),
                    rng.Uniform(box.min_y, box.max_y)};
      EXPECT_EQ(region.Contains(p), cls == BoxClass::kInside)
          << "(" << p.x << "," << p.y << ")";
    }
  }
}

TEST_P(CsgFuzz, IntegratorMatchesMonteCarlo) {
  Rng rng(GetParam() ^ 0xfeedULL);
  const Region region = RandomCsg(rng, 2);
  const Box bounds = region.Bounds();
  if (bounds.Empty() || bounds.Area() <= 0.0) return;
  const AreaEstimate est = Area(region);
  // Monte-Carlo reference over the region bounds.
  const int n = 120000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    const Point p{rng.Uniform(bounds.min_x, bounds.max_x),
                  rng.Uniform(bounds.min_y, bounds.max_y)};
    hits += region.Contains(p) ? 1 : 0;
  }
  const double mc = bounds.Area() * hits / n;
  const double mc_sigma = bounds.Area() * std::sqrt(0.25 / n);
  EXPECT_NEAR(est.area, mc, est.error_bound + 5.0 * mc_sigma);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsgFuzz,
                         ::testing::Range<uint64_t>(100, 112));

// ---------------------------------------------------------------------------
// Integrator algebra.

class IntegratorAlgebra : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntegratorAlgebra, IntersectionSymmetricAndMonotone) {
  Rng rng(GetParam());
  const Region a = RandomPrimitive(rng);
  const Region b = RandomPrimitive(rng);
  const AreaEstimate ab = AreaOfIntersection(a, b);
  const AreaEstimate ba = AreaOfIntersection(b, a);
  // Symmetry within the combined error bounds.
  EXPECT_NEAR(ab.area, ba.area, ab.error_bound + ba.error_bound + 1e-9);
  // area(a ∩ b) <= area(a) and <= area(b).
  const AreaEstimate aa = Area(a);
  const AreaEstimate bb = Area(b);
  EXPECT_LE(ab.LowerBound(), aa.UpperBound() + 1e-9);
  EXPECT_LE(ab.LowerBound(), bb.UpperBound() + 1e-9);
  // Union is superadditive: area(a ∪ b) >= max(area(a), area(b)).
  const AreaEstimate uu = Area(Region::Union(a, b));
  EXPECT_GE(uu.UpperBound() + 1e-9, aa.LowerBound());
  EXPECT_GE(uu.UpperBound() + 1e-9, bb.LowerBound());
  // Inclusion-exclusion: area(a) + area(b) = area(a ∪ b) + area(a ∩ b).
  EXPECT_NEAR(aa.area + bb.area, uu.area + ab.area,
              aa.error_bound + bb.error_bound + uu.error_bound +
                  ab.error_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegratorAlgebra,
                         ::testing::Range<uint64_t>(200, 215));

// ---------------------------------------------------------------------------
// Clipping algebra on random rectangles and convex polygons.

class ClipAlgebra : public ::testing::TestWithParam<uint64_t> {};

Polygon RandomRect(Rng& rng) {
  const double x = rng.Uniform(-8, 6);
  const double y = rng.Uniform(-8, 6);
  return Polygon::Rectangle(x, y, x + rng.Uniform(0.5, 6),
                            y + rng.Uniform(0.5, 6));
}

TEST_P(ClipAlgebra, RectPairProperties) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const Polygon a = RandomRect(rng);
    const Polygon b = RandomRect(rng);
    ASSERT_TRUE(a.CheckInvariants().ok()) << a.CheckInvariants().message();
    ASSERT_TRUE(b.CheckInvariants().ok()) << b.CheckInvariants().message();
    const double ab = ClippedArea(a, b);
    // Commutative for convex pairs.
    EXPECT_NEAR(ab, ClippedArea(b, a), 1e-9);
    // Bounded by both areas.
    EXPECT_LE(ab, a.Area() + 1e-9);
    EXPECT_LE(ab, b.Area() + 1e-9);
    // For axis-aligned rectangles the exact value is the box overlap.
    const Box overlap = Intersection(a.Bounds(), b.Bounds());
    EXPECT_NEAR(ab, overlap.Area(), 1e-9);
    // Self-clip is identity.
    EXPECT_NEAR(ClippedArea(a, a), a.Area(), 1e-9);
  }
}

TEST_P(ClipAlgebra, CircleApproximationClip) {
  Rng rng(GetParam() ^ 0xc0ffeeULL);
  const Circle c{{rng.Uniform(-3, 3), rng.Uniform(-3, 3)},
                 rng.Uniform(1.0, 4.0)};
  const Polygon circle_poly = TessellateCircle(c, 256);
  const Polygon window = RandomRect(rng);
  const double clipped = ClippedArea(circle_poly, window);
  // Compare against the integrator on the true circle.
  AreaOptions options;
  options.abs_tolerance = 0.01;
  options.max_depth = 16;
  const AreaEstimate est = AreaOfIntersection(
      Region::Make(c), Region::Make(window), options);
  // Tessellation underestimates the circle by < 0.1%.
  EXPECT_NEAR(clipped, est.area, est.error_bound + 0.002 * c.Area() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClipAlgebra,
                         ::testing::Range<uint64_t>(300, 310));

}  // namespace
}  // namespace indoorflow
