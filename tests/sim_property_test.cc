// Parameterized property tests for the simulation layer: detector parity
// across plan families and detection ranges, merger equivalence against a
// brute-force reference, and physical invariants of generated records.

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "src/sim/detector.h"
#include "src/sim/generators.h"

namespace indoorflow {
namespace {

// ---------------------------------------------------------------------------
// Detector parity sweep: continuous-quantized detection must equal the
// tick-based reference across plan shapes and detection ranges.

class DetectorParity
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DetectorParity, ContinuousEqualsTickBased) {
  const int plan_kind = std::get<0>(GetParam());
  const double range = std::get<1>(GetParam());

  const BuiltPlan built =
      plan_kind == 0 ? BuildOfficePlan({}) : BuildAirportPlan({});
  const DoorGraph graph(built.plan);
  Deployment deployment;
  for (const Door& door : built.plan.doors()) {
    bool conflict = false;
    for (const Device& d : deployment.devices()) {
      conflict |= Distance(d.range.center, door.position) <=
                  d.range.radius + range + 0.1;
    }
    if (!conflict) deployment.AddDevice(Circle{door.position, range});
  }
  deployment.BuildIndex();
  ASSERT_TRUE(deployment.RangesDisjoint());

  const RandomWaypointModel model(built, graph);
  const ProximityDetector detector(deployment);
  const DetectionOptions detection{1.0, true};

  int compared = 0;
  for (int object = 0; object < 6; ++object) {
    Rng rng(500 + static_cast<uint64_t>(object) * 31 +
            static_cast<uint64_t>(plan_kind));
    WaypointOptions options;
    options.duration = 300.0;
    options.max_pause = 30.0;
    const Trajectory traj = model.Generate(object, options, rng);

    std::vector<TrackingRecord> continuous;
    detector.DetectRecords(traj, detection, &continuous);
    std::vector<RawReading> readings;
    detector.DetectReadings(traj, detection, &readings);
    auto merged = MergeReadings(std::move(readings));
    ASSERT_TRUE(merged.ok());
    const auto chain = merged->ChainOf(object);
    ASSERT_EQ(continuous.size(), chain.size()) << "object " << object;
    for (size_t i = 0; i < chain.size(); ++i) {
      const TrackingRecord& tick = merged->record(chain[i]);
      EXPECT_EQ(continuous[i].device_id, tick.device_id);
      EXPECT_NEAR(continuous[i].ts, tick.ts, 1e-6);
      EXPECT_NEAR(continuous[i].te, tick.te, 1e-6);
      ++compared;
    }
  }
  (void)compared;  // zero records is legitimate for tiny ranges
}

INSTANTIATE_TEST_SUITE_P(
    PlansAndRanges, DetectorParity,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(1.0, 1.5, 2.5)));

// ---------------------------------------------------------------------------
// Merger equivalence against a brute-force reference on random streams.

class MergerFuzz : public ::testing::TestWithParam<uint64_t> {};

// O(n^2) reference: repeatedly glue mergeable reading pairs.
std::multiset<std::tuple<ObjectId, DeviceId, Timestamp, Timestamp>>
ReferenceMerge(std::vector<RawReading> readings, double max_gap) {
  std::sort(readings.begin(), readings.end(),
            [](const RawReading& a, const RawReading& b) {
              if (a.object_id != b.object_id) return a.object_id < b.object_id;
              if (a.t != b.t) return a.t < b.t;
              return a.device_id < b.device_id;
            });
  std::multiset<std::tuple<ObjectId, DeviceId, Timestamp, Timestamp>> out;
  size_t i = 0;
  while (i < readings.size()) {
    size_t j = i;
    while (j + 1 < readings.size() &&
           readings[j + 1].object_id == readings[i].object_id &&
           readings[j + 1].device_id == readings[j].device_id &&
           readings[j + 1].t - readings[j].t <= max_gap) {
      ++j;
    }
    out.insert({readings[i].object_id, readings[i].device_id, readings[i].t,
                readings[j].t});
    i = j + 1;
  }
  return out;
}

TEST_P(MergerFuzz, MatchesReference) {
  Rng rng(GetParam());
  // Random streams where objects never ping two devices at once
  // (non-overlapping detection ranges): object visits devices one after
  // another with strictly increasing timestamps.
  std::vector<RawReading> readings;
  for (ObjectId o = 0; o < 8; ++o) {
    double t = rng.Uniform(0.0, 5.0);
    const int visits = static_cast<int>(rng.UniformInt(1, 6));
    for (int v = 0; v < visits; ++v) {
      const DeviceId dev = static_cast<DeviceId>(rng.UniformInt(4ULL));
      const int pings = static_cast<int>(rng.UniformInt(1, 8));
      for (int p = 0; p < pings; ++p) {
        readings.push_back({o, dev, t});
        t += rng.Bernoulli(0.8) ? 1.0 : rng.Uniform(2.0, 10.0);
      }
      t += rng.Uniform(2.0, 20.0);
    }
  }
  const auto expected = ReferenceMerge(readings, 1.5);
  auto table = MergeReadings(readings);
  ASSERT_TRUE(table.ok());
  std::multiset<std::tuple<ObjectId, DeviceId, Timestamp, Timestamp>> got;
  for (size_t i = 0; i < table->size(); ++i) {
    const TrackingRecord& r = table->record(static_cast<RecordIndex>(i));
    got.insert({r.object_id, r.device_id, r.ts, r.te});
  }
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergerFuzz,
                         ::testing::Range<uint64_t>(1000, 1020));

// ---------------------------------------------------------------------------
// Physical invariants of generated datasets: while a record is open, the
// object really is inside the device's range (continuous, unquantized
// detection), and detections follow trajectory order.

class DatasetPhysics : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DatasetPhysics, RecordsTrackTheTrajectory) {
  const BuiltPlan built = BuildOfficePlan({});
  const DoorGraph graph(built.plan);
  Deployment deployment;
  for (const Door& door : built.plan.doors()) {
    deployment.AddDevice(Circle{door.position, 1.5});
  }
  deployment.BuildIndex();
  const RandomWaypointModel model(built, graph);
  const ProximityDetector detector(deployment);

  Rng rng(GetParam());
  WaypointOptions options;
  options.duration = 400.0;
  const Trajectory traj = model.Generate(1, options, rng);

  std::vector<TrackingRecord> records;
  detector.DetectRecords(traj, DetectionOptions{1.0, /*quantize=*/false},
                         &records);
  Timestamp prev_end = -1.0;
  for (const TrackingRecord& r : records) {
    EXPECT_LE(r.ts, r.te);
    EXPECT_GE(r.ts, prev_end - 1e-9);  // chronological, non-overlapping
    prev_end = r.te;
    const Circle& range =
        deployment.device(r.device_id).range;
    // Sample within the record: position is inside the range.
    for (int i = 0; i <= 4; ++i) {
      const Timestamp t = r.ts + (r.te - r.ts) * i / 4.0;
      EXPECT_LE(Distance(traj.At(t), range.center), range.radius + 1e-6)
          << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetPhysics,
                         ::testing::Range<uint64_t>(2000, 2010));

// ---------------------------------------------------------------------------
// Dataset generator sweeps across detection ranges (Table 4's range axis).

class GeneratorRangeSweep : public ::testing::TestWithParam<double> {};

TEST_P(GeneratorRangeSweep, DatasetWellFormed) {
  OfficeDatasetConfig config;
  config.num_objects = 10;
  config.duration = 400.0;
  config.detection_range = GetParam();
  const Dataset ds = GenerateOfficeDataset(config);
  EXPECT_TRUE(ds.deployment.RangesDisjoint());
  for (const Device& d : ds.deployment.devices()) {
    EXPECT_DOUBLE_EQ(d.range.radius, GetParam());
  }
  for (size_t i = 0; i < ds.ott.size(); ++i) {
    const TrackingRecord& r = ds.ott.record(static_cast<RecordIndex>(i));
    EXPECT_GE(r.ts, 0.0);
    EXPECT_LE(r.te, config.duration + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, GeneratorRangeSweep,
                         ::testing::Values(1.0, 1.5, 2.0, 2.5));

TEST(GeneratorOptionsTest, DevicesInRoomsAddBeacons) {
  OfficeDatasetConfig base;
  base.num_objects = 5;
  base.duration = 200.0;
  OfficeDatasetConfig beacons = base;
  beacons.devices_in_rooms = true;
  const Dataset without = GenerateOfficeDataset(base);
  const Dataset with = GenerateOfficeDataset(beacons);
  EXPECT_GT(with.deployment.size(), without.deployment.size());
  EXPECT_TRUE(with.deployment.RangesDisjoint());
  // A beacon sits at (or near) each room centroid when space allows.
  size_t covered_rooms = 0;
  std::vector<DeviceId> near;
  for (PartitionId room : with.built.room_ids) {
    with.deployment.DevicesNear(
        with.built.plan.partition(room).shape.Centroid(), 0.5, &near);
    covered_rooms += near.empty() ? 0 : 1;
  }
  EXPECT_GT(covered_rooms, with.built.room_ids.size() / 2);
}

}  // namespace
}  // namespace indoorflow
