// Tests for the request-tracing subsystem (src/common/trace.h): W3C
// traceparent parse/emit, head sampling, span-tree recording and bounds,
// ring behavior, and — in the *ConcurrencyTest suites the TSan CI job
// runs — that concurrent requests never interleave spans across trace
// trees and that executor lanes parent correctly.

#include "src/common/trace.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/executor.h"

namespace indoorflow {
namespace {

// ---------------------------------------------------------------------------
// TraceContext / W3C traceparent

TEST(TraceContextTest, ToTraceparentRoundTrips) {
  TraceContext ctx;
  ctx.trace_id_high = 0x4bf92f3577b34da6ULL;
  ctx.trace_id_low = 0xa3ce929d0e0e4736ULL;
  ctx.span_id = 0x00f067aa0ba902b7ULL;
  ctx.sampled = true;
  const std::string header = ctx.ToTraceparent();
  EXPECT_EQ(header,
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01");

  TraceContext parsed;
  ASSERT_TRUE(TraceContext::FromTraceparent(header, &parsed));
  EXPECT_EQ(parsed.trace_id_high, ctx.trace_id_high);
  EXPECT_EQ(parsed.trace_id_low, ctx.trace_id_low);
  EXPECT_EQ(parsed.span_id, ctx.span_id);
  EXPECT_TRUE(parsed.sampled);
}

TEST(TraceContextTest, UnsampledFlagParses) {
  TraceContext parsed;
  ASSERT_TRUE(TraceContext::FromTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", &parsed));
  EXPECT_FALSE(parsed.sampled);
}

TEST(TraceContextTest, RejectsMalformedHeaders) {
  TraceContext out;
  const char* bad[] = {
      "",
      "00",
      // wrong length
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",
      // unknown version
      "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      // uppercase hex (spec requires lowercase)
      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
      // zero trace id / zero parent id
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
      // separators in the wrong place
      "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01",
      // non-hex garbage
      "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",
  };
  for (const char* header : bad) {
    EXPECT_FALSE(TraceContext::FromTraceparent(header, &out))
        << "accepted: " << header;
  }
}

TEST(TraceContextTest, NewContextIsValidAndUnique) {
  const TraceContext a = NewTraceContext(1.0);
  const TraceContext b = NewTraceContext(1.0);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_TRUE(a.sampled);
  EXPECT_NE(a.trace_id_hex(), b.trace_id_hex());
  EXPECT_EQ(a.trace_id_hex().size(), 32u);
  EXPECT_EQ(a.span_id_hex().size(), 16u);
}

TEST(TraceContextTest, SamplingExtremes) {
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(NewTraceContext(1.0).sampled);
    EXPECT_FALSE(NewTraceContext(0.0).sampled);
  }
}

TEST(TraceContextTest, SamplingIsDeterministicInTheId) {
  // The decision is a pure function of the trace id: re-deriving it from
  // the id must agree with the minted context.
  for (int i = 0; i < 256; ++i) {
    const TraceContext ctx = NewTraceContext(0.5);
    const uint64_t threshold =
        static_cast<uint64_t>(0.5 * 9007199254740992.0);  // 2^53
    EXPECT_EQ(ctx.sampled, (ctx.trace_id_low >> 11) < threshold);
  }
}

TEST(TraceContextTest, SamplingRateIsRoughlyHonored) {
  int sampled = 0;
  const int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    sampled += NewTraceContext(0.25).sampled ? 1 : 0;
  }
  // 0.25 +- generous slack; splitmix64 is uniform enough for this band.
  EXPECT_GT(sampled, kTrials / 8);
  EXPECT_LT(sampled, kTrials / 2);
}

// ---------------------------------------------------------------------------
// Span / Trace

TEST(SpanTest, InertSpanRecordsNothing) {
  Span inert;
  EXPECT_FALSE(inert.active());
  EXPECT_EQ(inert.trace_id_hex(), "");
  inert.AddEvent("ignored");
  inert.RecordChild("ignored", 0, 1);
  Span child(&inert, "also inert");
  EXPECT_FALSE(child.active());
  Span null_parent(static_cast<const Span*>(nullptr), "inert too");
  EXPECT_FALSE(null_parent.active());
}

TEST(SpanTest, TreeStructureAndEvents) {
  const TraceContext ctx = NewTraceContext(1.0);
  auto trace = std::make_shared<Trace>(ctx);
  {
    Span root(trace.get(), "request");
    EXPECT_TRUE(root.active());
    EXPECT_EQ(root.id(), ctx.span_id);
    EXPECT_EQ(root.trace_id_hex(), ctx.trace_id_hex());
    root.RecordChild("queue_wait", trace->start_ns(), 1000);
    {
      Span child(&root, "engine");
      child.AddEvent("urcache.miss");
      Span grandchild(&child, "lane 0");
      EXPECT_TRUE(grandchild.active());
    }
  }
  trace->Finish();
  EXPECT_EQ(trace->span_count(), 4u);
  EXPECT_EQ(trace->dropped_spans(), 0);

  const std::string json = trace->ToJson();
  EXPECT_NE(json.find("\"trace_id\":\"" + ctx.trace_id_hex() + "\""),
            std::string::npos);
  // The root nests the others: "request" appears before "engine", which
  // holds "lane 0" in its children array and the cache event.
  const size_t request_pos = json.find("\"name\":\"request\"");
  const size_t engine_pos = json.find("\"name\":\"engine\"");
  const size_t lane_pos = json.find("\"name\":\"lane 0\"");
  ASSERT_NE(request_pos, std::string::npos);
  ASSERT_NE(engine_pos, std::string::npos);
  ASSERT_NE(lane_pos, std::string::npos);
  EXPECT_LT(request_pos, engine_pos);
  EXPECT_LT(engine_pos, lane_pos);
  EXPECT_NE(json.find("\"name\":\"urcache.miss\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue_wait\""), std::string::npos);
}

TEST(SpanTest, RemoteParentIdIsRootsParent) {
  TraceContext ctx = NewTraceContext(1.0);
  const uint64_t remote = 0x00f067aa0ba902b7ULL;
  Trace trace(ctx, remote);
  { Span root(&trace, "request"); }
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"parent_id\":\"00f067aa0ba902b7\""),
            std::string::npos);
}

TEST(SpanTest, SpanCapDropsNotGrows) {
  const TraceContext ctx = NewTraceContext(1.0);
  Trace trace(ctx);
  Span root(&trace, "request");
  for (size_t i = 0; i < Trace::kMaxSpans + 10; ++i) {
    Span child(&root, "c");
  }
  EXPECT_EQ(trace.span_count(), Trace::kMaxSpans);
  EXPECT_GT(trace.dropped_spans(), 0);
  // A child dropped at the cap must come out inert, not crash.
  Span overflow(&root, "over");
  EXPECT_FALSE(overflow.active());
}

TEST(SpanTest, EventCapDrops) {
  const TraceContext ctx = NewTraceContext(1.0);
  Trace trace(ctx);
  Span root(&trace, "request");
  for (size_t i = 0; i < Trace::kMaxEvents + 10; ++i) {
    root.AddEvent("e");
  }
  EXPECT_GT(trace.dropped_events(), 0);
}

TEST(SpanTest, FinishClosesOpenSpans) {
  const TraceContext ctx = NewTraceContext(1.0);
  auto trace = std::make_shared<Trace>(ctx);
  Span root(trace.get(), "request");  // never ended explicitly
  trace->Finish();
  const std::string json = trace->ToJson();
  // No span may serialize with a negative duration.
  EXPECT_EQ(json.find("\"dur_us\":-"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceRing

std::shared_ptr<const Trace> MakeFinishedTrace() {
  auto trace = std::make_shared<Trace>(NewTraceContext(1.0));
  { Span root(trace.get(), "request"); }
  trace->Finish();
  return trace;
}

TEST(TraceRingTest, BoundedAndNewestFirst) {
  TraceRing ring(3);
  std::vector<std::string> ids;
  for (int i = 0; i < 5; ++i) {
    auto trace = MakeFinishedTrace();
    ids.push_back(trace->context().trace_id_hex());
    ring.Push(trace);
  }
  EXPECT_EQ(ring.size(), 3u);
  const std::string json = ring.ToJson();
  EXPECT_NE(json.find("\"capacity\":3"), std::string::npos);
  EXPECT_NE(json.find("\"total\":5"), std::string::npos);
  // Oldest two evicted; newest serializes first.
  EXPECT_EQ(json.find(ids[0]), std::string::npos);
  EXPECT_EQ(json.find(ids[1]), std::string::npos);
  const size_t newest = json.find(ids[4]);
  const size_t middle = json.find(ids[3]);
  const size_t oldest = json.find(ids[2]);
  ASSERT_NE(newest, std::string::npos);
  ASSERT_NE(middle, std::string::npos);
  ASSERT_NE(oldest, std::string::npos);
  EXPECT_LT(newest, middle);
  EXPECT_LT(middle, oldest);
}

TEST(TraceRingTest, ClearEmptiesButKeepsTotal) {
  TraceRing ring(4);
  ring.Push(MakeFinishedTrace());
  ring.Push(MakeFinishedTrace());
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_NE(ring.ToJson().find("\"total\":2"), std::string::npos);
  ring.Push(MakeFinishedTrace());
  EXPECT_EQ(ring.size(), 1u);
}

TEST(TraceRingTest, NullPushIgnored) {
  TraceRing ring(2);
  ring.Push(nullptr);
  EXPECT_EQ(ring.size(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan CI job runs suites matching "Concurrency")

// Concurrent requests, each with its own Trace, recording from several
// threads at once: span trees must never interleave across traces, and
// every recorded span must land in its own tree.
TEST(TraceConcurrencyTest, ConcurrentTracesDoNotInterleave) {
  constexpr int kTraces = 8;
  constexpr int kSpansPerTrace = 40;
  std::vector<std::shared_ptr<Trace>> traces;
  traces.reserve(kTraces);
  for (int i = 0; i < kTraces; ++i) {
    traces.push_back(std::make_shared<Trace>(NewTraceContext(1.0)));
  }
  std::vector<std::thread> threads;
  threads.reserve(kTraces);
  for (int i = 0; i < kTraces; ++i) {
    threads.emplace_back([&traces, i] {
      Span root(traces[static_cast<size_t>(i)].get(), "request");
      for (int s = 0; s < kSpansPerTrace; ++s) {
        Span child(&root, "work " + std::to_string(s));
        child.AddEvent("tick");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const auto& trace : traces) {
    trace->Finish();
    // Root + its own children, nothing leaked in from a sibling trace.
    EXPECT_EQ(trace->span_count(), 1u + kSpansPerTrace);
    EXPECT_EQ(trace->dropped_spans(), 0);
  }
}

// One trace recorded from many threads (the executor-lane shape): all
// spans parent under the given parent and the tree stays bounded and
// consistent under concurrent mutation + serialization.
TEST(TraceConcurrencyTest, OneTraceManyRecorders) {
  auto trace = std::make_shared<Trace>(NewTraceContext(1.0));
  Span root(trace.get(), "request");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&root, trace] {
      for (int i = 0; i < kPerThread; ++i) {
        Span lane(&root, "lane");
        lane.AddEvent("urcache.hit");
        // Concurrent serialization must not tear (TSan checks this).
        if (i % 7 == 0) trace->ToJson();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  root.End();
  trace->Finish();
  EXPECT_EQ(trace->span_count(), 1u + kThreads * kPerThread);
}

// Executor lanes parent correctly: ParallelFor with a span parent records
// one "lane N" child per claimed lane, all under the passed parent.
TEST(TraceConcurrencyTest, ExecutorLanesParentUnderGivenSpan) {
  auto trace = std::make_shared<Trace>(NewTraceContext(1.0));
  int lanes = 0;
  {
    Span root(trace.get(), "request");
    Span engine(&root, "engine");
    std::vector<int> hits(256, 0);
    lanes = Executor::Default().ParallelFor(
        hits.size(), /*parallelism=*/4,
        [&hits](size_t i) { hits[i] += 1; }, &engine);
    for (int hit : hits) EXPECT_EQ(hit, 1);
  }
  trace->Finish();
  ASSERT_GE(lanes, 1);
  // request + engine + one span per lane.
  EXPECT_EQ(trace->span_count(), 2u + static_cast<size_t>(lanes));
  const std::string json = trace->ToJson();
  // Lane spans are children of "engine": they serialize inside its
  // subtree, after the engine span's name.
  const size_t engine_pos = json.find("\"name\":\"engine\"");
  const size_t lane_pos = json.find("\"name\":\"lane ");
  ASSERT_NE(engine_pos, std::string::npos);
  ASSERT_NE(lane_pos, std::string::npos);
  EXPECT_LT(engine_pos, lane_pos);
}

// The serial fallback (n below the parallel threshold or parallelism 1)
// still records a single "lane 0" span under the parent.
TEST(TraceConcurrencyTest, SerialFallbackRecordsOneLane) {
  auto trace = std::make_shared<Trace>(NewTraceContext(1.0));
  {
    Span root(trace.get(), "request");
    std::vector<int> hits(4, 0);
    const int lanes = Executor::Default().ParallelFor(
        hits.size(), /*parallelism=*/1,
        [&hits](size_t i) { hits[i] += 1; }, &root);
    EXPECT_EQ(lanes, 1);
  }
  trace->Finish();
  EXPECT_EQ(trace->span_count(), 2u);
  EXPECT_NE(trace->ToJson().find("\"name\":\"lane 0\""),
            std::string::npos);
}

// Unsampled path: a null span parent through ParallelFor records nothing
// and the lanes still run every index.
TEST(TraceConcurrencyTest, NullSpanParentStaysInert) {
  std::vector<int> hits(64, 0);
  Executor::Default().ParallelFor(hits.size(), /*parallelism=*/4,
                                  [&hits](size_t i) { hits[i] += 1; });
  for (int hit : hits) EXPECT_EQ(hit, 1);
}

// Ring under concurrent pushers + serializers.
TEST(TraceRingConcurrencyTest, ConcurrentPushAndSerialize) {
  TraceRing ring(8);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring] {
      for (int i = 0; i < 20; ++i) {
        ring.Push(MakeFinishedTrace());
        ring.ToJson();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_NE(ring.ToJson().find("\"total\":120"), std::string::npos);
}

}  // namespace
}  // namespace indoorflow
