// Tests for the insert-based (Guttman) R-tree: structural invariants,
// query correctness against brute force, and agreement with the
// bulk-loaded RTree.

#include <set>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/index/dynamic_rtree.h"
#include "src/index/rtree.h"

namespace indoorflow {
namespace {

Box RandomBox(Rng& rng, double extent = 100.0) {
  const double x = rng.Uniform(0, extent);
  const double y = rng.Uniform(0, extent);
  return Box{x, y, x + rng.Uniform(0.2, extent / 12),
             y + rng.Uniform(0.2, extent / 12)};
}

TEST(DynamicRTreeTest, EmptyTree) {
  const DynamicRTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.Bounds().Empty());
  std::vector<int32_t> out;
  tree.IntersectionQuery(Box{0, 0, 1, 1}, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(DynamicRTreeTest, SingleItem) {
  DynamicRTree tree;
  tree.Insert(7, Box{1, 1, 2, 2});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  std::vector<int32_t> out;
  tree.IntersectionQuery(Box{0, 0, 3, 3}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7);
  tree.IntersectionQuery(Box{5, 5, 6, 6}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(DynamicRTreeTest, GrowsAndKeepsInvariants) {
  DynamicRTree tree(4);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(i, RandomBox(rng));
    if (i % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << i;
    }
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GE(tree.Height(), 3);  // fanout 4 over 500 items
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

class DynamicRTreeFanout : public ::testing::TestWithParam<int> {};

TEST_P(DynamicRTreeFanout, QueriesMatchBruteForce) {
  const int fanout = GetParam();
  DynamicRTree tree(fanout);
  Rng rng(41 + static_cast<uint64_t>(fanout));
  std::vector<std::pair<int32_t, Box>> reference;
  for (int i = 0; i < 400; ++i) {
    const Box box = RandomBox(rng);
    tree.Insert(i, box);
    reference.push_back({i, box});
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());

  std::vector<int32_t> out;
  for (int trial = 0; trial < 100; ++trial) {
    const Box query = RandomBox(rng, 120.0);
    tree.IntersectionQuery(query, &out);
    std::set<int32_t> got(out.begin(), out.end());
    EXPECT_EQ(got.size(), out.size()) << "duplicate results";
    std::set<int32_t> expected;
    for (const auto& [id, box] : reference) {
      if (box.Intersects(query)) expected.insert(id);
    }
    EXPECT_EQ(got, expected) << "fanout " << fanout << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, DynamicRTreeFanout,
                         ::testing::Values(2, 4, 8, 16));

TEST(DynamicRTreeTest, AgreesWithBulkLoadedRTree) {
  Rng rng(77);
  DynamicRTree dynamic(8);
  std::vector<RTree::Item> items;
  for (int i = 0; i < 300; ++i) {
    const Box box = RandomBox(rng);
    dynamic.Insert(i, box);
    items.push_back(RTree::Item{i, box});
  }
  const RTree packed = RTree::BulkLoad(std::move(items), 8);

  std::vector<int32_t> a;
  std::vector<int32_t> b;
  for (int trial = 0; trial < 100; ++trial) {
    const Box query = RandomBox(rng, 120.0);
    dynamic.IntersectionQuery(query, &a);
    packed.IntersectionQuery(query, &b);
    EXPECT_EQ(std::set<int32_t>(a.begin(), a.end()),
              std::set<int32_t>(b.begin(), b.end()))
        << "trial " << trial;
  }
}

TEST(DynamicRTreeTest, DuplicateBoxesAllowed) {
  DynamicRTree tree(4);
  const Box box{0, 0, 1, 1};
  for (int i = 0; i < 20; ++i) tree.Insert(i, box);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<int32_t> out;
  tree.IntersectionQuery(box, &out);
  EXPECT_EQ(out.size(), 20u);
}

TEST(DynamicRTreeTest, BoundsCoverEverything) {
  DynamicRTree tree(6);
  Rng rng(3);
  Box expected;
  for (int i = 0; i < 100; ++i) {
    const Box box = RandomBox(rng);
    expected.ExpandToInclude(box);
    tree.Insert(i, box);
  }
  EXPECT_EQ(tree.Bounds(), expected);
}

}  // namespace
}  // namespace indoorflow
