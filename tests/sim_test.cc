// Tests for the simulation layer: trajectories, detection, generators.
// Includes the key parity property: continuous (analytic) detection must
// agree with tick-based sampling + merging.

#include <cmath>

#include <gtest/gtest.h>

#include "src/sim/detector.h"
#include "src/sim/generators.h"
#include "src/sim/waypoint.h"

namespace indoorflow {
namespace {

TEST(TrajectoryTest, InterpolationAndClamping) {
  Trajectory traj;
  traj.object = 1;
  traj.points = {{0.0, {0, 0}}, {10.0, {10, 0}}, {15.0, {10, 0}}};
  EXPECT_EQ(traj.At(-1.0), (Point{0, 0}));
  EXPECT_EQ(traj.At(0.0), (Point{0, 0}));
  EXPECT_EQ(traj.At(5.0), (Point{5, 0}));
  EXPECT_EQ(traj.At(12.0), (Point{10, 0}));  // pausing
  EXPECT_EQ(traj.At(99.0), (Point{10, 0}));
}

TEST(WaypointTest, TrajectoryStaysInPlanAndRespectsSpeed) {
  const BuiltPlan built = BuildOfficePlan({});
  const DoorGraph graph(built.plan);
  const RandomWaypointModel model(built, graph);
  WaypointOptions options;
  options.duration = 600.0;
  Rng rng(3);
  const Trajectory traj = model.Generate(1, options, rng);
  ASSERT_GE(traj.points.size(), 2u);
  EXPECT_DOUBLE_EQ(traj.start_time(), 0.0);
  EXPECT_LE(traj.end_time(), 600.0 + 1e-6);

  for (size_t i = 0; i + 1 < traj.points.size(); ++i) {
    const TrajectoryPoint& a = traj.points[i];
    const TrajectoryPoint& b = traj.points[i + 1];
    EXPECT_LE(a.t, b.t);
    const double dt = b.t - a.t;
    const double dist = Distance(a.position, b.position);
    // Never faster than the configured speed (= Vmax).
    EXPECT_LE(dist, options.speed * dt + 1e-6);
    // Positions stay within the plan.
    EXPECT_NE(built.plan.PartitionAt(a.position), kInvalidPartition)
        << "point " << i;
  }
  // Midpoints of moving legs also stay within the plan (walls respected).
  for (size_t i = 0; i + 1 < traj.points.size(); ++i) {
    const Point mid =
        (traj.points[i].position + traj.points[i + 1].position) * 0.5;
    EXPECT_NE(built.plan.PartitionAt(mid), kInvalidPartition);
  }
}

TEST(WaypointTest, DeterministicGivenSeed) {
  const BuiltPlan built = BuildOfficePlan({});
  const DoorGraph graph(built.plan);
  const RandomWaypointModel model(built, graph);
  WaypointOptions options;
  options.duration = 300.0;
  Rng rng_a(12);
  Rng rng_b(12);
  const Trajectory a = model.Generate(1, options, rng_a);
  const Trajectory b = model.Generate(1, options, rng_b);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].position, b.points[i].position);
    EXPECT_DOUBLE_EQ(a.points[i].t, b.points[i].t);
  }
}

TEST(DetectorTest, StraightPassThroughRange) {
  Deployment deployment;
  deployment.AddDevice(Circle{{10, 0}, 2.0});
  deployment.BuildIndex();
  const ProximityDetector detector(deployment);

  Trajectory traj;
  traj.object = 5;
  traj.points = {{0.0, {0, 0}}, {20.0, {20, 0}}};  // 1 m/s along the x-axis

  std::vector<TrackingRecord> records;
  detector.DetectRecords(traj, DetectionOptions{1.0, /*quantize=*/false},
                         &records);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].object_id, 5);
  EXPECT_EQ(records[0].device_id, 0);
  EXPECT_NEAR(records[0].ts, 8.0, 1e-9);
  EXPECT_NEAR(records[0].te, 12.0, 1e-9);
}

TEST(DetectorTest, QuantizationSnapsToSamplingGrid) {
  Deployment deployment;
  deployment.AddDevice(Circle{{10.3, 0}, 2.0});
  deployment.BuildIndex();
  const ProximityDetector detector(deployment);
  Trajectory traj;
  traj.object = 5;
  traj.points = {{0.0, {0, 0}}, {20.0, {20, 0}}};
  std::vector<TrackingRecord> records;
  detector.DetectRecords(traj, DetectionOptions{1.0, true}, &records);
  ASSERT_EQ(records.size(), 1u);
  // Continuous interval is [8.3, 12.3]; quantized to [9, 12].
  EXPECT_DOUBLE_EQ(records[0].ts, 9.0);
  EXPECT_DOUBLE_EQ(records[0].te, 12.0);
}

TEST(DetectorTest, FastCrossingMissedBetweenTicks) {
  Deployment deployment;
  deployment.AddDevice(Circle{{10.5, 0}, 0.3});
  deployment.BuildIndex();
  const ProximityDetector detector(deployment);
  Trajectory traj;
  traj.object = 5;
  // 2 m/s: inside the 0.6m-wide range during t in [5.1, 5.4] — between
  // the 1 Hz ticks at 5 and 6.
  traj.points = {{0.0, {0, 0}}, {10.0, {20, 0}}};
  std::vector<TrackingRecord> quantized;
  detector.DetectRecords(traj, DetectionOptions{1.0, true}, &quantized);
  EXPECT_TRUE(quantized.empty());
  std::vector<TrackingRecord> continuous;
  detector.DetectRecords(traj, DetectionOptions{1.0, false}, &continuous);
  EXPECT_EQ(continuous.size(), 1u);
}

TEST(DetectorTest, StationaryInsideRange) {
  Deployment deployment;
  deployment.AddDevice(Circle{{0, 0}, 2.0});
  deployment.BuildIndex();
  const ProximityDetector detector(deployment);
  Trajectory traj;
  traj.object = 1;
  traj.points = {{0.0, {1, 0}}, {30.0, {1, 0}}};  // parked inside
  std::vector<TrackingRecord> records;
  detector.DetectRecords(traj, DetectionOptions{1.0, true}, &records);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].ts, 0.0);
  EXPECT_DOUBLE_EQ(records[0].te, 30.0);
}

// The parity property: continuous quantized detection == tick sampling +
// merger, on realistic office trajectories.
TEST(DetectorTest, ContinuousMatchesTickBasedOnOfficePlan) {
  const BuiltPlan built = BuildOfficePlan({});
  const DoorGraph graph(built.plan);
  Deployment deployment;
  for (const Door& door : built.plan.doors()) {
    deployment.AddDevice(Circle{door.position, 1.5});
  }
  deployment.BuildIndex();
  ASSERT_TRUE(deployment.RangesDisjoint());

  const RandomWaypointModel model(built, graph);
  const ProximityDetector detector(deployment);
  const DetectionOptions detection{1.0, true};

  int compared_records = 0;
  for (int object = 0; object < 10; ++object) {
    Rng rng(1000 + static_cast<uint64_t>(object));
    WaypointOptions options;
    options.duration = 400.0;
    const Trajectory traj = model.Generate(object, options, rng);

    std::vector<TrackingRecord> continuous;
    detector.DetectRecords(traj, detection, &continuous);

    std::vector<RawReading> readings;
    detector.DetectReadings(traj, detection, &readings);
    auto merged = MergeReadings(std::move(readings));
    ASSERT_TRUE(merged.ok());

    const auto chain = merged->ChainOf(object);
    ASSERT_EQ(continuous.size(), chain.size()) << "object " << object;
    for (size_t i = 0; i < chain.size(); ++i) {
      const TrackingRecord& tick = merged->record(chain[i]);
      EXPECT_EQ(continuous[i].device_id, tick.device_id);
      EXPECT_NEAR(continuous[i].ts, tick.ts, 1e-6);
      EXPECT_NEAR(continuous[i].te, tick.te, 1e-6);
      ++compared_records;
    }
  }
  EXPECT_GT(compared_records, 20);  // the walk actually produced data
}

TEST(GeneratorTest, OfficeDatasetBasicInvariants) {
  OfficeDatasetConfig config;
  config.num_objects = 30;
  config.duration = 600.0;
  const Dataset ds = GenerateOfficeDataset(config);
  EXPECT_TRUE(ds.deployment.RangesDisjoint());
  EXPECT_GT(ds.deployment.size(), 30u);  // door + hallway readers
  EXPECT_EQ(ds.pois.size(), 75u);
  EXPECT_TRUE(ds.ott.finalized());
  EXPECT_GT(ds.ott.size(), 0u);
  EXPECT_LE(ds.ott.objects().size(), 30u);
  EXPECT_DOUBLE_EQ(ds.vmax, 1.1);
  // All records reference valid devices and lie within the window.
  for (size_t i = 0; i < ds.ott.size(); ++i) {
    const TrackingRecord& r = ds.ott.record(static_cast<RecordIndex>(i));
    EXPECT_GE(r.device_id, 0);
    EXPECT_LT(static_cast<size_t>(r.device_id), ds.deployment.size());
    EXPECT_GE(r.ts, ds.window_start - 1e-9);
    EXPECT_LE(r.te, ds.window_end + 1e-9);
  }
}

TEST(GeneratorTest, ObjectPrefixStableAcrossDatasetSizes) {
  OfficeDatasetConfig small;
  small.num_objects = 5;
  small.duration = 300.0;
  OfficeDatasetConfig large = small;
  large.num_objects = 10;
  const Dataset a = GenerateOfficeDataset(small);
  const Dataset b = GenerateOfficeDataset(large);
  // Object 3's records identical in both datasets (per-object streams).
  const auto chain_a = a.ott.ChainOf(3);
  const auto chain_b = b.ott.ChainOf(3);
  ASSERT_EQ(chain_a.size(), chain_b.size());
  for (size_t i = 0; i < chain_a.size(); ++i) {
    EXPECT_EQ(a.ott.record(chain_a[i]).device_id,
              b.ott.record(chain_b[i]).device_id);
    EXPECT_DOUBLE_EQ(a.ott.record(chain_a[i]).ts,
                     b.ott.record(chain_b[i]).ts);
  }
}

TEST(GeneratorTest, DetectionRangeScalesRecordCounts) {
  OfficeDatasetConfig narrow;
  narrow.num_objects = 20;
  narrow.duration = 600.0;
  narrow.detection_range = 1.0;
  OfficeDatasetConfig wide = narrow;
  wide.detection_range = 2.5;
  const Dataset a = GenerateOfficeDataset(narrow);
  const Dataset b = GenerateOfficeDataset(wide);
  // Wider ranges see objects longer; record count should not collapse.
  EXPECT_GT(a.ott.size(), 0u);
  EXPECT_GT(b.ott.size(), 0u);
}

TEST(GeneratorTest, CphDatasetShape) {
  CphDatasetConfig config;
  config.num_passengers = 40;
  config.window = 3600.0;
  const Dataset ds = GenerateCphLikeDataset(config);
  EXPECT_TRUE(ds.deployment.RangesDisjoint());
  EXPECT_EQ(ds.pois.size(), 75u);
  EXPECT_GT(ds.ott.size(), 0u);
  // Sparse deployment: far fewer devices than the office default.
  EXPECT_LT(ds.deployment.size(), 40u);
}

}  // namespace
}  // namespace indoorflow
