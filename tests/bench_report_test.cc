// Tests for the bench_report parser/renderer (tools/bench_report).

#include <gtest/gtest.h>

#include "tools/bench_report.h"

namespace indoorflow::benchreport {
namespace {

TEST(BenchLineTest, ParsesPlainRow) {
  const auto row = ParseBenchLine(
      "BM_Ablation_ARTreePointQuery                       5.25 us         "
      "5.24 us       133429");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->family, "BM_Ablation_ARTreePointQuery");
  EXPECT_TRUE(row->args.empty());
  EXPECT_NEAR(row->wall_ms, 5.25e-3, 1e-9);
  EXPECT_NEAR(row->cpu_ms, 5.24e-3, 1e-9);
  EXPECT_EQ(row->iterations, 133429);
  EXPECT_TRUE(row->label.empty());
  EXPECT_TRUE(row->counters.empty());
}

TEST(BenchLineTest, ParsesArgsLabelAndCounters) {
  const auto row = ParseBenchLine(
      "BM_Ablation_ThresholdQuery/join:1/tau_pct:99/area:0    16.6 ms      "
      "   15.4 ms           49 pois_eval=75 presences=14.166k join");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->family, "BM_Ablation_ThresholdQuery");
  ASSERT_EQ(row->args.size(), 3u);
  EXPECT_EQ(row->args[0].first, "join");
  EXPECT_EQ(row->args[0].second, "1");
  EXPECT_EQ(row->args[2].first, "area");
  EXPECT_DOUBLE_EQ(row->wall_ms, 16.6);
  EXPECT_DOUBLE_EQ(row->cpu_ms, 15.4);
  EXPECT_EQ(row->label, "join");
  EXPECT_DOUBLE_EQ(row->counters.at("pois_eval"), 75.0);
  EXPECT_DOUBLE_EQ(row->counters.at("presences"), 14166.0);
}

TEST(BenchLineTest, ParsesUnnamedArgsAndUnits) {
  const auto ns_row = ParseBenchLine(
      "BM_Tiny/0         812 ns        810 ns      800000");
  ASSERT_TRUE(ns_row.has_value());
  ASSERT_EQ(ns_row->args.size(), 1u);
  EXPECT_EQ(ns_row->args[0].first, "");
  EXPECT_EQ(ns_row->args[0].second, "0");
  EXPECT_NEAR(ns_row->wall_ms, 812e-6, 1e-12);

  const auto s_row =
      ParseBenchLine("BM_Big        1.20 s        1.19 s      1");
  ASSERT_TRUE(s_row.has_value());
  EXPECT_DOUBLE_EQ(s_row->wall_ms, 1200.0);
}

TEST(BenchLineTest, RejectsNonBenchmarkLines) {
  EXPECT_FALSE(ParseBenchLine("").has_value());
  EXPECT_FALSE(ParseBenchLine("-----------------------------").has_value());
  EXPECT_FALSE(
      ParseBenchLine("Benchmark      Time       CPU  Iterations").has_value());
  EXPECT_FALSE(ParseBenchLine("Run on (1 X 2200 MHz CPU s)").has_value());
  EXPECT_FALSE(ParseBenchLine("BM_TooShort 1.0 ms").has_value());
}

TEST(BenchOutputTest, ParsesWholeDump) {
  const std::string dump =
      "2026-07-05T00:00:00+00:00\n"
      "Running ./bench_x\n"
      "---------------------------------------------------------\n"
      "Benchmark               Time             CPU   Iterations\n"
      "---------------------------------------------------------\n"
      "BM_A/k:1            1.00 ms         0.90 ms          100 iter\n"
      "BM_A/k:5            2.00 ms         1.90 ms           50 iter\n"
      "BM_B               10.0 us          9.0 us          999\n";
  const auto rows = ParseBenchOutput(dump);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].family, "BM_A");
  EXPECT_EQ(rows[2].family, "BM_B");
  EXPECT_NEAR(rows[2].cpu_ms, 9e-3, 1e-9);
}

TEST(RenderMarkdownTest, GroupsByFamilyWithColumns) {
  const std::string dump =
      "BM_A/k:1/algo:0     1.00 ms         0.90 ms          100 iterative\n"
      "BM_A/k:1/algo:1     0.50 ms         0.45 ms          200 join\n"
      "BM_C                3.00 ms         2.90 ms           10 x=5\n";
  const std::string md = RenderMarkdown(ParseBenchOutput(dump));
  // Two family sections.
  EXPECT_NE(md.find("## BM_A"), std::string::npos);
  EXPECT_NE(md.find("## BM_C"), std::string::npos);
  // Argument columns and variant labels.
  EXPECT_NE(md.find("| k | algo | variant | cpu (ms) |"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 0 | iterative | 0.9 |"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 1 | join | 0.45 |"), std::string::npos);
  // Counter column for BM_C.
  EXPECT_NE(md.find(" x |"), std::string::npos);
  EXPECT_NE(md.find(" 5 |"), std::string::npos);
}

TEST(RenderMarkdownTest, EmptyInputRendersNothing) {
  EXPECT_TRUE(RenderMarkdown({}).empty());
}

TEST(RenderMarkdownTest, MissingCounterCellsStayEmpty) {
  const std::string dump =
      "BM_A/k:1     1.00 ms    0.90 ms    100 hits=3\n"
      "BM_A/k:2     1.00 ms    0.90 ms    100\n";
  const std::string md = RenderMarkdown(ParseBenchOutput(dump));
  EXPECT_NE(md.find("| 3 |"), std::string::npos);
  // The second row has an empty hits cell, not a stale value.
  EXPECT_NE(md.find("100 |  |"), std::string::npos);
}

}  // namespace
}  // namespace indoorflow::benchreport
