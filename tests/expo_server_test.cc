// Tests for the dependency-free exposition server (src/common/expo_server.h):
// route dispatch, 404/405 handling, query-string stripping, ephemeral-port
// startup, idempotent shutdown and restart, plus a concurrent stress suite
// that serves /metrics and /profiles/recent while engine queries record
// EXPLAIN profiles — it runs under the TSan CI job (suite name matches its
// -R "Concurrency|..." test filter).

#include "src/common/expo_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/core/engine.h"
#include "src/core/query_profile.h"

namespace indoorflow {
namespace {

// Minimal blocking HTTP request against 127.0.0.1:port. Returns the raw
// response (status line + headers + body), or "" on connection failure.
std::string HttpRequest(int port, const std::string& target,
                        const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = method + " " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(ExpoServerTest, ServesRegisteredRouteOnEphemeralPort) {
  ExpoServer server;
  server.Handle("/ping", "text/plain", [] { return std::string("pong"); });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);
  const std::string response = HttpRequest(server.port(), "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_EQ(Body(response), "pong");
  server.Stop();
}

TEST(ExpoServerTest, UnknownPathIs404) {
  ExpoServer server;
  server.Handle("/ping", "text/plain", [] { return std::string("pong"); });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = HttpRequest(server.port(), "/nope");
  EXPECT_NE(response.find("404"), std::string::npos) << response;
  server.Stop();
}

TEST(ExpoServerTest, NonGetIs405) {
  ExpoServer server;
  server.Handle("/ping", "text/plain", [] { return std::string("pong"); });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = HttpRequest(server.port(), "/ping", "POST");
  EXPECT_NE(response.find("405"), std::string::npos) << response;
  server.Stop();
}

TEST(ExpoServerTest, QueryStringIsStripped) {
  ExpoServer server;
  server.Handle("/ping", "text/plain", [] { return std::string("pong"); });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response =
      HttpRequest(server.port(), "/ping?verbose=1&x=2");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_EQ(Body(response), "pong");
  server.Stop();
}

TEST(ExpoServerTest, HandleAfterStartIsIgnored) {
  ExpoServer server;
  server.Handle("/a", "text/plain", [] { return std::string("a"); });
  ASSERT_TRUE(server.Start(0).ok());
  server.Handle("/late", "text/plain", [] { return std::string("late"); });
  EXPECT_NE(HttpRequest(server.port(), "/late").find("404"),
            std::string::npos);
  EXPECT_EQ(Body(HttpRequest(server.port(), "/a")), "a");
  server.Stop();
}

TEST(ExpoServerTest, StopIsIdempotentAndRestartWorks) {
  ExpoServer server;
  server.Handle("/ping", "text/plain", [] { return std::string("pong"); });
  ASSERT_TRUE(server.Start(0).ok());
  const int first_port = server.port();
  EXPECT_GT(first_port, 0);
  server.Stop();
  server.Stop();  // must be a no-op
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_EQ(Body(HttpRequest(server.port(), "/ping")), "pong");
  server.Stop();
}

TEST(ExpoServerTest, ServesMetricsRegistryDump) {
  MetricsRegistry registry;
  registry.counter("expo.test.count").Add(3);
  ExpoServer server;
  server.Handle("/metrics", "text/plain; version=0.0.4",
                [&registry] { return registry.DumpText(); });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string body = Body(HttpRequest(server.port(), "/metrics"));
  EXPECT_NE(body.find("# TYPE indoorflow_expo_test_count counter"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("indoorflow_expo_test_count 3"), std::string::npos);
  server.Stop();
}

TEST(ExpoServerTest, SurvivesEarlyCloseAndPartialRequests) {
  // Misbehaving clients — connect-and-close, half a request line, and a
  // client that closes before reading the response — must not wedge or
  // kill the accept loop (the write path ignores SIGPIPE/EPIPE and the
  // read path tolerates EINTR/early EOF).
  ExpoServer server;
  const std::string large_body(256 * 1024, 'x');
  server.Handle("/ping", "text/plain", [] { return std::string("pong"); });
  server.Handle("/large", "text/plain",
                [&large_body] { return large_body; });
  ASSERT_TRUE(server.Start(0).ok());
  const int port = server.port();

  const auto raw_connect = [port] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  };

  // 1) Connect and immediately close without sending a byte.
  ::close(raw_connect());

  // 2) Send a truncated request line, then close mid-request.
  {
    const int fd = raw_connect();
    const char partial[] = "GET /pi";
    EXPECT_GT(::send(fd, partial, sizeof(partial) - 1, 0), 0);
    ::close(fd);
  }

  // 3) Request a large body but close before reading it, so the server's
  //    write hits a dead peer (EPIPE/ECONNRESET) mid-response.
  {
    const int fd = raw_connect();
    const char request[] =
        "GET /large HTTP/1.1\r\nHost: localhost\r\n"
        "Connection: close\r\n\r\n";
    EXPECT_GT(::send(fd, request, sizeof(request) - 1, 0), 0);
    ::close(fd);
  }

  // The server must still answer well-formed requests afterwards.
  const std::string response = HttpRequest(port, "/ping");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_EQ(Body(response), "pong");
  const std::string large = HttpRequest(port, "/large");
  EXPECT_EQ(Body(large), large_body);
  server.Stop();
}

// --- Concurrency stress (runs under the TSan CI job) ------------------------

TEST(ExpoServerConcurrencyTest, ServesWhileQueriesRecordProfiles) {
  // The acceptance scenario: the exposition server answers /metrics and
  // /profiles/recent while concurrent engine queries (with and without
  // caller profiles) feed the shared flight recorder.
  OfficeDatasetConfig config;
  config.num_objects = 40;
  config.duration = 300.0;
  config.num_pois = 8;
  config.seed = 5;
  const Dataset dataset = GenerateOfficeDataset(config);
  QueryEngine engine(dataset, EngineConfig{});
  ProfileRecorder recorder(/*capacity=*/4, /*window=*/64);
  engine.AttachProfileRecorder(&recorder);

  MetricsRegistry registry;
  ExpoServer server;
  server.Handle("/metrics", "text/plain; version=0.0.4",
                [&registry] { return registry.DumpText(); });
  server.Handle("/profiles/recent", "application/json",
                [&recorder] { return recorder.ToJson(); });
  ASSERT_TRUE(server.Start(0).ok());
  const int port = server.port();

  std::atomic<int> bad_responses{0};
  constexpr int kClientThreads = 3;
  constexpr int kRequestsPerClient = 20;
  constexpr int kQueryThreads = 3;
  constexpr int kQueriesPerThread = 10;

  std::vector<std::thread> threads;
  for (int c = 0; c < kClientThreads; ++c) {
    threads.emplace_back([port, &bad_responses, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::string target =
            (c + i) % 2 == 0 ? "/metrics" : "/profiles/recent";
        const std::string response = HttpRequest(port, target);
        if (response.find("200 OK") == std::string::npos) {
          bad_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  const Timestamp mid = (dataset.window_start + dataset.window_end) / 2.0;
  for (int q = 0; q < kQueryThreads; ++q) {
    threads.emplace_back([&engine, &registry, mid, q] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        registry.counter("expo.stress.queries").Add(1);
        if (i % 2 == 0) {
          QueryProfile profile;
          engine.SnapshotTopK(mid + q * 7.0 + i, 3, Algorithm::kJoin,
                              nullptr, nullptr, &profile);
        } else {
          engine.SnapshotTopK(mid + q * 7.0 + i, 3, Algorithm::kIterative);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.Stop();

  EXPECT_EQ(bad_responses.load(), 0);
  EXPECT_EQ(recorder.recorded(),
            int64_t{kQueryThreads} * kQueriesPerThread);
  EXPECT_EQ(registry.counter("expo.stress.queries").value(),
            int64_t{kQueryThreads} * kQueriesPerThread);
}

}  // namespace
}  // namespace indoorflow
