// Parameterized property tests for the indoor space model: metric
// properties of the indoor walking distance and structural invariants of
// the generated plans, across plan families and sizes.

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/indoor/door_graph.h"
#include "src/indoor/indoor_distance.h"
#include "src/indoor/plan_builders.h"

namespace indoorflow {
namespace {

enum class PlanKind { kTiny, kOffice, kOfficeLarge, kAirport };

BuiltPlan MakePlan(PlanKind kind) {
  switch (kind) {
    case PlanKind::kTiny:
      return BuildTinyPlan();
    case PlanKind::kOffice:
      return BuildOfficePlan({});
    case PlanKind::kOfficeLarge: {
      OfficePlanConfig config;
      config.num_rows = 3;
      config.rooms_per_side = 10;
      return BuildOfficePlan(config);
    }
    case PlanKind::kAirport:
      return BuildAirportPlan({});
  }
  return BuildTinyPlan();
}

Point RandomPointInPlan(const BuiltPlan& built, Rng& rng) {
  const std::vector<PartitionId>& pool =
      rng.Bernoulli(0.5) && !built.room_ids.empty() ? built.room_ids
                                                    : built.hallway_ids;
  const Polygon& shape =
      built.plan.partition(pool[rng.UniformInt(
                               static_cast<uint64_t>(pool.size()))])
          .shape;
  const Box b = shape.Bounds();
  for (int i = 0; i < 100; ++i) {
    const Point p{rng.Uniform(b.min_x, b.max_x),
                  rng.Uniform(b.min_y, b.max_y)};
    if (shape.Contains(p)) return p;
  }
  return shape.Centroid();
}

class IndoorMetric : public ::testing::TestWithParam<PlanKind> {};

TEST_P(IndoorMetric, PlanIsValid) {
  const BuiltPlan built = MakePlan(GetParam());
  EXPECT_TRUE(built.plan.Validate().ok());
  // All partitions convex (intra-partition Euclidean assumption).
  for (const Partition& part : built.plan.partitions()) {
    EXPECT_TRUE(part.shape.IsConvex()) << part.name;
    EXPECT_GT(part.shape.Area(), 0.0) << part.name;
  }
  // Doors belong to exactly the two partitions they connect.
  for (const Door& door : built.plan.doors()) {
    const std::vector<PartitionId> at = built.plan.PartitionsAt(door.position);
    EXPECT_GE(at.size(), 2u) << "door " << door.id;
  }
}

TEST_P(IndoorMetric, DistanceIsAMetricOnSamples) {
  const BuiltPlan built = MakePlan(GetParam());
  const DoorGraph graph(built.plan);
  const IndoorDistance dist(built.plan, graph);
  Rng rng(17 + static_cast<uint64_t>(GetParam()));

  for (int trial = 0; trial < 40; ++trial) {
    const Point a = RandomPointInPlan(built, rng);
    const Point b = RandomPointInPlan(built, rng);
    const Point c = RandomPointInPlan(built, rng);
    const double ab = dist.Between(a, b);
    const double ba = dist.Between(b, a);
    const double ac = dist.Between(a, c);
    const double cb = dist.Between(c, b);
    ASSERT_FALSE(std::isinf(ab));
    // Symmetry.
    EXPECT_NEAR(ab, ba, 1e-9);
    // Identity.
    EXPECT_NEAR(dist.Between(a, a), 0.0, 1e-12);
    // Never shorter than Euclidean.
    EXPECT_GE(ab + 1e-9, Distance(a, b));
    // Triangle inequality (the route through c is one feasible walk).
    EXPECT_LE(ab, ac + cb + 1e-6);
  }
}

TEST_P(IndoorMetric, DoorPathLegsSumToDistance) {
  const BuiltPlan built = MakePlan(GetParam());
  const DoorGraph graph(built.plan);
  const size_t n = graph.num_doors();
  ASSERT_GT(n, 1u);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      const std::vector<DoorId> path =
          graph.PathBetween(static_cast<DoorId>(a), static_cast<DoorId>(b));
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), static_cast<DoorId>(a));
      EXPECT_EQ(path.back(), static_cast<DoorId>(b));
      double total = 0.0;
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        total += Distance(built.plan.door(path[i]).position,
                          built.plan.door(path[i + 1]).position);
      }
      EXPECT_NEAR(total,
                  graph.Between(static_cast<DoorId>(a),
                                static_cast<DoorId>(b)),
                  1e-9);
    }
  }
}

TEST_P(IndoorMetric, PartitionLookupConsistency) {
  const BuiltPlan built = MakePlan(GetParam());
  Rng rng(23);
  const Box bounds = built.plan.Bounds();
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.Uniform(bounds.min_x - 2, bounds.max_x + 2),
                  rng.Uniform(bounds.min_y - 2, bounds.max_y + 2)};
    const PartitionId single = built.plan.PartitionAt(p);
    const std::vector<PartitionId> all = built.plan.PartitionsAt(p);
    if (single == kInvalidPartition) {
      EXPECT_TRUE(all.empty());
    } else {
      ASSERT_FALSE(all.empty());
      // PartitionAt returns the lowest-id containing partition.
      EXPECT_EQ(single, all.front());
      for (PartitionId id : all) {
        EXPECT_TRUE(built.plan.partition(id).shape.Contains(p));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Plans, IndoorMetric,
                         ::testing::Values(PlanKind::kTiny, PlanKind::kOffice,
                                           PlanKind::kOfficeLarge,
                                           PlanKind::kAirport));

// POI generation sweep: counts, containment, determinism across sizes.
class PoiSweep : public ::testing::TestWithParam<int> {};

TEST_P(PoiSweep, GeneratesRequestedCount) {
  const BuiltPlan built = BuildOfficePlan({});
  Rng rng(5);
  const PoiSet pois = GeneratePois(built, GetParam(), rng);
  ASSERT_EQ(pois.size(), static_cast<size_t>(GetParam()));
  for (const Poi& poi : pois) {
    EXPECT_GT(poi.Area(), 0.0);
    EXPECT_FALSE(poi.name.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, PoiSweep,
                         ::testing::Values(1, 10, 75, 200));

}  // namespace
}  // namespace indoorflow
