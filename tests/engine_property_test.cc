// Parameterized end-to-end properties of the query engine, swept over
// dataset seeds, detection ranges, and topology modes:
//   * iterative / join parity on both query types;
//   * topology-mode monotonicity (exact ⊆ partition ⊆ off, flow-wise);
//   * flow bounds and subset independence.

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "src/core/engine.h"

namespace indoorflow {
namespace {

struct EngineCase {
  uint64_t seed;
  double detection_range;
  TopologyMode mode;
};

void PrintTo(const EngineCase& c, std::ostream* os) {
  *os << "seed" << c.seed << "_range" << c.detection_range << "_mode"
      << static_cast<int>(c.mode);
}

class EngineSweep : public ::testing::TestWithParam<EngineCase> {
 protected:
  EngineSweep() {
    OfficeDatasetConfig config;
    config.num_objects = 25;
    config.duration = 900.0;
    config.detection_range = GetParam().detection_range;
    config.seed = GetParam().seed;
    dataset_ = GenerateOfficeDataset(config);
    EngineConfig engine_config;
    engine_config.topology = GetParam().mode;
    engine_ = std::make_unique<QueryEngine>(dataset_, engine_config);
  }

  Dataset dataset_;
  std::unique_ptr<QueryEngine> engine_;
};

std::map<PoiId, double> AsMap(const std::vector<PoiFlow>& flows) {
  std::map<PoiId, double> out;
  for (const PoiFlow& f : flows) out[f.poi] = f.flow;
  return out;
}

TEST_P(EngineSweep, SnapshotParity) {
  const int k = static_cast<int>(dataset_.pois.size());
  for (const Timestamp t : {300.0, 600.0}) {
    const auto iter = AsMap(engine_->SnapshotTopK(t, k, Algorithm::kIterative));
    const auto join = AsMap(engine_->SnapshotTopK(t, k, Algorithm::kJoin));
    ASSERT_EQ(iter.size(), join.size());
    for (const auto& [poi, flow] : iter) {
      ASSERT_TRUE(join.contains(poi)) << "poi " << poi;
      EXPECT_NEAR(flow, join.at(poi), 1e-9) << "poi " << poi << " t " << t;
    }
  }
}

TEST_P(EngineSweep, IntervalParity) {
  const int k = static_cast<int>(dataset_.pois.size());
  const auto iter =
      AsMap(engine_->IntervalTopK(200.0, 700.0, k, Algorithm::kIterative));
  const auto join =
      AsMap(engine_->IntervalTopK(200.0, 700.0, k, Algorithm::kJoin));
  ASSERT_EQ(iter.size(), join.size());
  for (const auto& [poi, flow] : iter) {
    EXPECT_NEAR(flow, join.at(poi), 1e-9) << "poi " << poi;
  }
}

TEST_P(EngineSweep, FlowsBoundedByObjectCount) {
  const int k = static_cast<int>(dataset_.pois.size());
  const double num_objects =
      static_cast<double>(dataset_.ott.objects().size());
  for (const PoiFlow& f :
       engine_->IntervalTopK(200.0, 700.0, k, Algorithm::kIterative)) {
    EXPECT_GE(f.flow, 0.0);
    // Each object's presence is at most 1 (Definition 1).
    EXPECT_LE(f.flow, num_objects + 1e-6);
  }
}

TEST_P(EngineSweep, FlowIndependentOfSubset) {
  // A POI's flow must not depend on which other POIs are queried.
  const std::vector<PoiId> small = {2, 9, 30};
  const std::vector<PoiId> large = {0, 2, 5, 9, 14, 22, 30, 41, 60};
  for (const Algorithm algo : {Algorithm::kIterative, Algorithm::kJoin}) {
    const auto from_small = AsMap(engine_->SnapshotTopK(
        450.0, static_cast<int>(small.size()), algo, &small));
    const auto from_large = AsMap(engine_->SnapshotTopK(
        450.0, static_cast<int>(large.size()), algo, &large));
    for (PoiId id : small) {
      ASSERT_TRUE(from_small.contains(id));
      ASSERT_TRUE(from_large.contains(id));
      EXPECT_NEAR(from_small.at(id), from_large.at(id), 1e-9)
          << "poi " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EngineSweep,
    ::testing::Values(
        EngineCase{11, 1.5, TopologyMode::kOff},
        EngineCase{11, 1.5, TopologyMode::kPartition},
        EngineCase{11, 1.5, TopologyMode::kExact},
        EngineCase{12, 1.0, TopologyMode::kPartition},
        EngineCase{13, 2.5, TopologyMode::kPartition},
        EngineCase{14, 2.0, TopologyMode::kOff}));

// ---------------------------------------------------------------------------
// Topology-mode monotonicity: exact point-wise regions are subsets of the
// paper's partition-level regions, which are subsets of the unchecked
// regions — so the flows must not increase as the mode tightens.

class TopologyMonotonicity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopologyMonotonicity, FlowsShrinkAsModesTighten) {
  OfficeDatasetConfig config;
  config.num_objects = 20;
  config.duration = 900.0;
  config.seed = GetParam();
  const Dataset dataset = GenerateOfficeDataset(config);

  auto flows_for = [&](TopologyMode mode) {
    EngineConfig engine_config;
    engine_config.topology = mode;
    const QueryEngine engine(dataset, engine_config);
    return AsMap(engine.SnapshotTopK(
        500.0, static_cast<int>(dataset.pois.size()),
        Algorithm::kIterative));
  };
  const auto off = flows_for(TopologyMode::kOff);
  const auto partition = flows_for(TopologyMode::kPartition);
  const auto exact = flows_for(TopologyMode::kExact);

  // Integration tolerance: each presence is computed to ~1% of the POI, so
  // allow a small cushion per comparison.
  constexpr double kSlack = 0.05;
  for (const auto& [poi, flow_off] : off) {
    EXPECT_LE(partition.at(poi), flow_off + kSlack) << "poi " << poi;
    EXPECT_LE(exact.at(poi), partition.at(poi) + kSlack) << "poi " << poi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyMonotonicity,
                         ::testing::Values(21u, 22u, 23u));

// ---------------------------------------------------------------------------
// k sweep: results are always sorted, sized min(k, |P|), and prefixes agree.

class KSweep : public ::testing::TestWithParam<int> {};

TEST_P(KSweep, SortedAndPrefixConsistent) {
  static const Dataset* dataset = [] {
    OfficeDatasetConfig config;
    config.num_objects = 25;
    config.duration = 900.0;
    config.seed = 31;
    return new Dataset(GenerateOfficeDataset(config));
  }();
  static const QueryEngine* engine = [] {
    EngineConfig engine_config;
    engine_config.topology = TopologyMode::kPartition;
    return new QueryEngine(*dataset, engine_config);
  }();

  const int k = GetParam();
  const auto top = engine->SnapshotTopK(450.0, k, Algorithm::kJoin);
  EXPECT_EQ(top.size(),
            std::min<size_t>(static_cast<size_t>(k),
                             dataset->pois.size()));
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i].flow, top[i - 1].flow + 1e-12);
  }
  // Prefix property versus the full ranking.
  const auto full = engine->SnapshotTopK(
      450.0, static_cast<int>(dataset->pois.size()), Algorithm::kJoin);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_NEAR(top[i].flow, full[i].flow, 1e-9) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KSweep,
                         ::testing::Values(1, 5, 10, 20, 30, 40, 50, 75,
                                           100));

}  // namespace
}  // namespace indoorflow
