// Tests for the live streaming monitor.

#include <numbers>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/streaming.h"
#include "src/indoor/plan_builders.h"
#include "src/sim/detector.h"

namespace indoorflow {
namespace {

class StreamingFixture : public ::testing::Test {
 protected:
  StreamingFixture() : built_(BuildTinyPlan()), graph_(built_.plan) {
    deployment_.AddDevice(Circle{{5, 8}, 1.0});   // room_a
    deployment_.AddDevice(Circle{{15, 8}, 1.0});  // room_b
    deployment_.BuildIndex();
    pois_.push_back(Poi{0, "room_a", Polygon::Rectangle(0, 4, 10, 12)});
    pois_.push_back(Poi{1, "room_b", Polygon::Rectangle(10, 4, 20, 12)});
    pois_.push_back(Poi{2, "hallway", Polygon::Rectangle(0, 0, 20, 4)});
  }

  StreamingMonitor MakeMonitor(const TopologyChecker* topology = nullptr) {
    StreamingOptions options;
    options.vmax = 1.0;
    options.expiry_seconds = 100.0;
    return StreamingMonitor(deployment_, pois_, options, topology);
  }

  BuiltPlan built_;
  DoorGraph graph_;
  Deployment deployment_;
  PoiSet pois_;
};

TEST_F(StreamingFixture, IngestValidation) {
  StreamingMonitor monitor = MakeMonitor();
  EXPECT_TRUE(monitor.Ingest({1, 0, 10.0}).ok());
  EXPECT_FALSE(monitor.Ingest({1, 99, 11.0}).ok());  // unknown device
  EXPECT_FALSE(monitor.Ingest({1, 0, 5.0}).ok());    // out of order
  EXPECT_TRUE(monitor.Ingest({2, 1, 3.0}).ok());     // other objects free
  EXPECT_DOUBLE_EQ(monitor.now(), 10.0);
}

TEST_F(StreamingFixture, DetectedObjectContributesItsRange) {
  StreamingMonitor monitor = MakeMonitor();
  for (double t = 0.0; t <= 10.0; t += 1.0) {
    ASSERT_TRUE(monitor.Ingest({1, 0, t}).ok());
  }
  EXPECT_EQ(monitor.ActiveObjects(10.0), 1u);
  const auto top = monitor.CurrentTopK(10.0, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].poi, 0);  // room_a
  // Presence = device range / room area, exactly (fast path).
  EXPECT_NEAR(top[0].flow, std::numbers::pi / 80.0, 1e-9);
  EXPECT_DOUBLE_EQ(top[1].flow, 0.0);
}

TEST_F(StreamingFixture, UndetectedRegionGrowsThenExpires) {
  StreamingMonitor monitor = MakeMonitor();
  ASSERT_TRUE(monitor.Ingest({1, 0, 0.0}).ok());
  // Shortly after: small ring around the last device.
  const Region early = monitor.LiveRegion(1, 5.0);
  EXPECT_TRUE(early.Contains({5, 4}));      // ~4m away
  EXPECT_FALSE(early.Contains({15, 8}));    // room_b, 10m away
  // Later: the ring covers room_b's device too.
  const Region late = monitor.LiveRegion(1, 40.0);
  EXPECT_TRUE(late.Contains({15, 8}));
  // Past expiry: gone.
  EXPECT_TRUE(monitor.LiveRegion(1, 200.0).IsEmpty());
  EXPECT_EQ(monitor.ActiveObjects(200.0), 0u);
  const auto top = monitor.CurrentTopK(200.0, 1);
  EXPECT_DOUBLE_EQ(top[0].flow, 0.0);
}

TEST_F(StreamingFixture, DeviceHandoffKeepsPreviousConstraint) {
  StreamingMonitor monitor = MakeMonitor();
  ASSERT_TRUE(monitor.Ingest({1, 0, 0.0}).ok());
  ASSERT_TRUE(monitor.Ingest({1, 1, 12.0}).ok());
  // Active at dev1 now; the ring from dev0 (budget 12) intersects.
  const Region region = monitor.LiveRegion(1, 12.0);
  EXPECT_TRUE(region.Contains({15, 8}));
  EXPECT_FALSE(region.Contains({5, 8}));  // not at dev0 anymore
}

TEST_F(StreamingFixture, TopologyPruningApplies) {
  const TopologyChecker checker(built_.plan, graph_, deployment_);
  StreamingMonitor plain = MakeMonitor();
  StreamingMonitor checked = MakeMonitor(&checker);
  for (StreamingMonitor* m : {&plain, &checked}) {
    ASSERT_TRUE(m->Ingest({1, 0, 0.0}).ok());
  }
  // 9 seconds after leaving dev0 (room_a): Euclidean ring reaches room_b's
  // area across the wall, but the walk through both doors is ~16m.
  const Point room_b_point{12, 6};
  const Region euclid = plain.LiveRegion(1, 9.0);
  const Region indoor = checked.LiveRegion(1, 9.0);
  EXPECT_TRUE(euclid.Contains(room_b_point));
  EXPECT_FALSE(indoor.Contains(room_b_point));
}

// Live states must agree with the historical engine where both are defined:
// at a time inside a detection, the live region equals the historical
// snapshot UR, so flows match.
TEST_F(StreamingFixture, AgreesWithHistoricalEngineWhileDetected) {
  StreamingMonitor monitor = MakeMonitor();
  ObjectTrackingTable table;
  for (ObjectId o = 0; o < 3; ++o) {
    for (double t = 0.0; t <= 50.0; t += 1.0) {
      ASSERT_TRUE(monitor.Ingest({o, o % 2, t}).ok());
    }
    table.Append({o, o % 2, 0.0, 50.0});
  }
  ASSERT_TRUE(table.Finalize().ok());
  EngineConfig config;
  config.vmax = 1.0;
  config.topology = TopologyMode::kOff;
  const QueryEngine engine(built_.plan, graph_, deployment_, table, pois_,
                           config);
  const auto live = monitor.CurrentTopK(50.0, 3);
  const auto historical = engine.SnapshotTopK(50.0, 3, Algorithm::kIterative);
  ASSERT_EQ(live.size(), historical.size());
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].poi, historical[i].poi);
    EXPECT_NEAR(live[i].flow, historical[i].flow, 1e-9);
  }
}

// End-to-end: stream a generated office dataset's readings and watch flows.
TEST(StreamingPipelineTest, OfficeStream) {
  const BuiltPlan built = BuildOfficePlan({});
  const DoorGraph graph(built.plan);
  Deployment deployment;
  for (const Door& door : built.plan.doors()) {
    deployment.AddDevice(Circle{door.position, 1.5});
  }
  deployment.BuildIndex();
  Rng poi_rng(3);
  const PoiSet pois = GeneratePois(built, 30, poi_rng);

  const RandomWaypointModel model(built, graph);
  const ProximityDetector detector(deployment);
  std::vector<RawReading> readings;
  for (ObjectId o = 0; o < 6; ++o) {
    Rng rng(8000 + static_cast<uint64_t>(o));
    WaypointOptions options;
    options.duration = 400.0;
    options.max_pause = 60.0;
    const Trajectory traj = model.Generate(o, options, rng);
    detector.DetectReadings(traj, DetectionOptions{}, &readings);
  }
  std::sort(readings.begin(), readings.end(),
            [](const RawReading& a, const RawReading& b) {
              return a.t < b.t;
            });
  ASSERT_FALSE(readings.empty());

  StreamingOptions options;
  options.vmax = 1.1;
  StreamingMonitor monitor(deployment, pois, options);
  for (const RawReading& r : readings) {
    ASSERT_TRUE(monitor.Ingest(r).ok());
  }
  EXPECT_GT(monitor.ActiveObjects(monitor.now()), 0u);
  const auto top = monitor.CurrentTopK(monitor.now(), 5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i].flow, top[i - 1].flow);
  }
}

}  // namespace
}  // namespace indoorflow
