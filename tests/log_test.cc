// Tests for the structured logging sink (src/common/log.h): level parsing
// and gating, text and JSON rendering, field escaping, file redirection,
// env-driven configuration, and a concurrent-emission stress suite that
// runs under the TSan CI job (suite name matches its -R "Concurrency|..."
// test filter) and asserts whole lines never interleave.

#include "src/common/log.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace indoorflow {
namespace {

std::string ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    content.append(buf, n);
  }
  std::fclose(file);
  return content;
}

std::vector<std::string> Lines(const std::string& content) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    lines.push_back(content.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(LogTest, LevelNamesRoundTrip) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                               LogLevel::kWarn, LogLevel::kError}) {
    auto parsed = ParseLogLevel(LogLevelName(level));
    ASSERT_TRUE(parsed.ok()) << LogLevelName(level);
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_EQ(*ParseLogLevel("WARN"), LogLevel::kWarn);
  EXPECT_EQ(*ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_FALSE(ParseLogLevel("loud").ok());
  EXPECT_FALSE(ParseLogLevel("").ok());
}

TEST(LogTest, LevelGateFiltersLowerLevels) {
  SetLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
  SetLogLevel(LogLevel::kInfo);
}

TEST(LogTest, TextFormatRendersLevelComponentAndFields) {
  const std::string path = ::testing::TempDir() + "/indoorflow_log_text.log";
  std::remove(path.c_str());
  ASSERT_TRUE(SetLogFile(path).ok());
  SetLogFormat(LogFormat::kText);
  SetLogLevel(LogLevel::kDebug);
  Log(LogLevel::kWarn, "unit", "something happened")
      .Field("count", int64_t{7})
      .Field("name", "widget");
  const std::string content = ReadFile(path);
  EXPECT_NE(content.find(" WARN [unit] something happened"),
            std::string::npos)
      << content;
  EXPECT_NE(content.find("count=7"), std::string::npos);
  EXPECT_NE(content.find("name=widget"), std::string::npos);
  EXPECT_EQ(content.back(), '\n');
}

TEST(LogTest, JsonFormatRendersOneObjectPerLine) {
  const std::string path = ::testing::TempDir() + "/indoorflow_log_json.log";
  std::remove(path.c_str());
  ASSERT_TRUE(SetLogFile(path).ok());
  SetLogFormat(LogFormat::kJson);
  SetLogLevel(LogLevel::kDebug);
  Log(LogLevel::kError, "unit", "with \"quotes\" and\nnewline")
      .Field("ratio", 2.5)
      .Field("flag", true)
      .Field("tabbed", "a\tb");
  const std::string content = ReadFile(path);
  const std::vector<std::string> lines = Lines(content);
  ASSERT_EQ(lines.size(), 1u) << content;
  const std::string& line = lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\":\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"component\":\"unit\""), std::string::npos);
  EXPECT_NE(line.find("with \\\"quotes\\\" and\\nnewline"),
            std::string::npos);
  EXPECT_NE(line.find("\"ratio\":2.5"), std::string::npos);
  EXPECT_NE(line.find("\"flag\":true"), std::string::npos);
  EXPECT_NE(line.find("a\\tb"), std::string::npos);
  SetLogFormat(LogFormat::kText);
}

TEST(LogTest, RecordsBelowLevelAreDropped) {
  const std::string path = ::testing::TempDir() + "/indoorflow_log_drop.log";
  std::remove(path.c_str());
  ASSERT_TRUE(SetLogFile(path).ok());
  SetLogLevel(LogLevel::kError);
  Log(LogLevel::kInfo, "unit", "should not appear").Field("k", int64_t{1});
  EXPECT_EQ(ReadFile(path), "");
  SetLogLevel(LogLevel::kInfo);
}

TEST(LogTest, SetLogFileFailureKeepsPreviousSink) {
  const std::string path = ::testing::TempDir() + "/indoorflow_log_keep.log";
  std::remove(path.c_str());
  ASSERT_TRUE(SetLogFile(path).ok());
  EXPECT_FALSE(SetLogFile("/nonexistent-dir/sub/log.txt").ok());
  Log(LogLevel::kError, "unit", "still goes to the old file");
  EXPECT_NE(ReadFile(path).find("still goes to the old file"),
            std::string::npos);
}

TEST(LogTest, InitLoggingFromEnvAppliesLevelAndFormat) {
  ASSERT_EQ(setenv("INDOORFLOW_LOG_LEVEL", "debug", 1), 0);
  ASSERT_EQ(setenv("INDOORFLOW_LOG_FORMAT", "json", 1), 0);
  InitLoggingFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  EXPECT_EQ(GetLogFormat(), LogFormat::kJson);
  // Malformed values are ignored, current configuration stays.
  ASSERT_EQ(setenv("INDOORFLOW_LOG_LEVEL", "shouty", 1), 0);
  InitLoggingFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  unsetenv("INDOORFLOW_LOG_LEVEL");
  unsetenv("INDOORFLOW_LOG_FORMAT");
  SetLogLevel(LogLevel::kInfo);
  SetLogFormat(LogFormat::kText);
}

TEST(LogTest, AppendJsonEscapedHandlesSpecials) {
  std::string out;
  AppendJsonEscaped("a\"b\\c\nd\te\rf", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\rf");
  out.clear();
  AppendJsonEscaped(std::string("ctrl:\x01"), &out);
  EXPECT_EQ(out, "ctrl:\\u0001");
}

// --- Concurrency stress (runs under the TSan CI job) ------------------------

TEST(LogConcurrencyTest, ConcurrentRecordsNeverInterleave) {
  const std::string path =
      ::testing::TempDir() + "/indoorflow_log_stress.log";
  std::remove(path.c_str());
  ASSERT_TRUE(SetLogFile(path).ok());
  SetLogFormat(LogFormat::kJson);
  SetLogLevel(LogLevel::kDebug);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  const std::string payload(64, 'x');
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &payload] {
      for (int i = 0; i < kPerThread; ++i) {
        Log(LogLevel::kInfo, "stress", "concurrent record")
            .Field("thread", int64_t{t})
            .Field("i", int64_t{i})
            .Field("payload", payload);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<std::string> lines = Lines(ReadFile(path));
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"msg\":\"concurrent record\""), std::string::npos)
        << line;
    EXPECT_NE(line.find(payload), std::string::npos) << line;
  }
  SetLogFormat(LogFormat::kText);
}

}  // namespace
}  // namespace indoorflow
