// Tests for tracking-state resolution and uncertainty-region derivation
// (paper Section 3, Cases 1-4 and the snapshot formulas), without the
// topology check (covered in topology_check_test.cc).

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/tracking_state.h"
#include "src/core/uncertainty.h"
#include "src/index/artree.h"

namespace indoorflow {
namespace {

// Three devices on a line, radius 1, 10m apart; Vmax = 1 m/s.
class UncertaintyFixture : public ::testing::Test {
 protected:
  UncertaintyFixture() {
    deployment_.AddDevice(Circle{{0, 0}, 1.0});    // dev 0
    deployment_.AddDevice(Circle{{10, 0}, 1.0});   // dev 1
    deployment_.AddDevice(Circle{{20, 0}, 1.0});   // dev 2
    deployment_.BuildIndex();
    // Object 1: dev0 [0,10], dev1 [20,30], dev2 [40,50].
    table_.Append({1, 0, 0, 10});
    table_.Append({1, 1, 20, 30});
    table_.Append({1, 2, 40, 50});
    // Object 2: a single record at dev1 [20,30].
    table_.Append({2, 1, 20, 30});
    INDOORFLOW_CHECK(table_.Finalize().ok());
    artree_ = ARTree::Build(table_);
    model_ = std::make_unique<UncertaintyModel>(table_, deployment_, 1.0);
  }

  SnapshotState StateAt(ObjectId object, Timestamp t) {
    std::vector<ARTreeEntry> entries;
    artree_.PointQuery(t, &entries);
    for (const ARTreeEntry& e : entries) {
      if (table_.record(e.cur).object_id == object) {
        return ResolveSnapshotState(table_, e, t);
      }
    }
    ADD_FAILURE() << "no entry for object " << object << " at t=" << t;
    return {};
  }

  Deployment deployment_;
  ObjectTrackingTable table_;
  ARTree artree_;
  std::unique_ptr<UncertaintyModel> model_;
};

TEST_F(UncertaintyFixture, StateResolution) {
  const SnapshotState active = StateAt(1, 25.0);
  ASSERT_TRUE(active.active());
  EXPECT_EQ(table_.record(active.covering.front()).device_id, 1);
  EXPECT_EQ(table_.record(active.pre).device_id, 0);

  const SnapshotState inactive = StateAt(1, 15.0);
  EXPECT_FALSE(inactive.active());
  EXPECT_EQ(table_.record(inactive.pre).device_id, 0);  // rd_pre
  EXPECT_EQ(table_.record(inactive.suc).device_id, 1);  // rd_suc

  const SnapshotState first = StateAt(1, 5.0);
  EXPECT_TRUE(first.active());
  EXPECT_EQ(first.pre, kInvalidRecord);

  // The entry-based and chain-based resolutions agree.
  for (const Timestamp t : {5.0, 15.0, 25.0, 35.0, 45.0}) {
    const SnapshotState a = StateAt(1, t);
    const SnapshotState b = ResolveSnapshotStateAt(table_, 1, t);
    EXPECT_EQ(a.active(), b.active()) << "t=" << t;
    EXPECT_EQ(a.pre, b.pre) << "t=" << t;
    EXPECT_EQ(a.covering, b.covering) << "t=" << t;
    if (!a.active()) {
      EXPECT_EQ(a.suc, b.suc) << "t=" << t;
    }
  }
}

TEST_F(UncertaintyFixture, SnapshotActiveIsRangeIntersectRing) {
  // Case 1: UR = Ring(dev_pre, Vmax*(t - rd_pre.te)) ∩ dev_cov.range.
  const Region ur = model_->Snapshot(StateAt(1, 25.0), 25.0);
  EXPECT_TRUE(ur.Contains({10, 0}));     // inside dev1's range
  EXPECT_FALSE(ur.Contains({0, 0}));     // not at dev0
  EXPECT_FALSE(ur.Contains({15, 0}));    // outside the covering range
  // Ring budget 15 covers dev1's range entirely here, so UR == range.
  EXPECT_TRUE(ur.Contains({10.9, 0}));
}

TEST_F(UncertaintyFixture, SnapshotActiveTightRing) {
  // t=20.5: ring budget = 10.5, outer radius 11.5; dev1's range spans
  // distance [9, 11] from dev0 — fully inside, so again UR == range. Make
  // the ring bind by querying asymmetrically: t=20.0 is the record start,
  // covered by the gap entry's end — use t=20.2, budget 10.2, outer 11.2.
  const Region ur = model_->Snapshot(StateAt(1, 20.2), 20.2);
  EXPECT_TRUE(ur.Contains({9.5, 0}));   // dist 9.5 from dev0: inside ring
  // (11, 0) is on dev1's boundary at distance 11 from dev0 < 11.2: inside.
  EXPECT_TRUE(ur.Contains({10.9, 0}));
}

TEST_F(UncertaintyFixture, SnapshotFirstRecordIsRangeOnly) {
  const Region ur = model_->Snapshot(StateAt(1, 5.0), 5.0);
  EXPECT_TRUE(ur.Contains({0, 0}));
  EXPECT_TRUE(ur.Contains({0.9, 0}));
  EXPECT_FALSE(ur.Contains({1.5, 0}));
}

TEST_F(UncertaintyFixture, SnapshotInactiveIsRingIntersection) {
  // Case 2: UR = Ring(dev_pre, 5) ∩ Ring(dev_suc, 5) at t = 15.
  const Region ur = model_->Snapshot(StateAt(1, 15.0), 15.0);
  EXPECT_TRUE(ur.Contains({5, 0}));      // 5m from both
  EXPECT_FALSE(ur.Contains({2, 0}));     // 8m from dev1: beyond budget
  EXPECT_FALSE(ur.Contains({8, 0.0}));   // 8m from dev0
  EXPECT_FALSE(ur.Contains({0.5, 0}));   // inside dev0's range: undetected
  EXPECT_FALSE(ur.Contains({5, 5}));     // sqrt(50) > 6 from both
}

TEST_F(UncertaintyFixture, SnapshotMbrContainsRegion) {
  Rng rng(21);
  for (const Timestamp t : {5.0, 15.0, 25.0, 35.0, 45.0}) {
    const SnapshotState state = StateAt(1, t);
    const Region ur = model_->Snapshot(state, t);
    const Box mbr = model_->SnapshotMbr(state, t);
    const Box domain = ur.Bounds();
    for (int i = 0; i < 500; ++i) {
      const Point p{rng.Uniform(domain.min_x - 1, domain.max_x + 1),
                    rng.Uniform(domain.min_y - 1, domain.max_y + 1)};
      if (ur.Contains(p)) {
        EXPECT_TRUE(mbr.Contains(p))
            << "t=" << t << " point (" << p.x << "," << p.y << ")";
      }
    }
  }
}

TEST_F(UncertaintyFixture, IntervalActiveWholeWindow) {
  const IntervalChain chain = RelevantChain(table_, 1, 22.0, 28.0);
  ASSERT_EQ(chain.records.size(), 1u);
  EXPECT_TRUE(chain.active_at_start);
  EXPECT_TRUE(chain.active_at_end);
  const Region ur = model_->Interval(chain, 22.0, 28.0);
  EXPECT_TRUE(ur.Contains({10, 0}));
  EXPECT_FALSE(ur.Contains({5, 0}));
}

TEST_F(UncertaintyFixture, IntervalCase1ActiveBothEnds) {
  // [5, 25]: active at both ends; UR = Θ(dev0, dev1, 10, 20).
  const IntervalChain chain = RelevantChain(table_, 1, 5.0, 25.0);
  ASSERT_EQ(chain.records.size(), 2u);
  EXPECT_TRUE(chain.active_at_start);
  EXPECT_TRUE(chain.active_at_end);
  const Region ur = model_->Interval(chain, 5.0, 25.0);
  EXPECT_TRUE(ur.Contains({5, 0}));    // bridge midpoint: 4 + 4 <= 10
  EXPECT_TRUE(ur.Contains({0, 0}));    // disks included (complete Θ)
  EXPECT_TRUE(ur.Contains({10, 0}));
  EXPECT_FALSE(ur.Contains({5, 8}));   // too far off-axis
  EXPECT_FALSE(ur.Contains({17, 0}));  // beyond dev1 toward dev2
}

TEST_F(UncertaintyFixture, IntervalCase4WithinSingleGap) {
  // [12, 18] lies inside the gap (10, 20): Θ ∩ Ring_s ∩ Ring_e.
  const IntervalChain chain = RelevantChain(table_, 1, 12.0, 18.0);
  ASSERT_EQ(chain.records.size(), 2u);
  EXPECT_FALSE(chain.active_at_start);
  EXPECT_FALSE(chain.active_at_end);
  const Region ur = model_->Interval(chain, 12.0, 18.0);
  EXPECT_TRUE(ur.Contains({5, 0}));
  // Inside dev0's range: the object is undetected during the window, so
  // the rings exclude the detection disks.
  EXPECT_FALSE(ur.Contains({0.5, 0}));
  EXPECT_FALSE(ur.Contains({10, 0}));
}

TEST_F(UncertaintyFixture, IntervalCase2InactiveStart) {
  // [15, 45]: inactive at ts (gap 10-20), active at te (dev2).
  const IntervalChain chain = RelevantChain(table_, 1, 15.0, 45.0);
  ASSERT_EQ(chain.records.size(), 3u);
  EXPECT_FALSE(chain.active_at_start);
  EXPECT_TRUE(chain.active_at_end);
  const Region ur = model_->Interval(chain, 15.0, 45.0);
  // (5,0): within Θ(dev0,dev1) and within Ring_s(dev1, 5) (distance 5).
  EXPECT_TRUE(ur.Contains({5, 0}));
  // (2,0): within Θ but 8m from dev1 > ring budget 5+1, and not in the
  // second ellipse — excluded (the paper's Ring_s pruning).
  EXPECT_FALSE(ur.Contains({2, 0}));
  // Second ellipse piece unaffected by Ring_s.
  EXPECT_TRUE(ur.Contains({15, 0}));
  EXPECT_TRUE(ur.Contains({20, 0}));
}

TEST_F(UncertaintyFixture, IntervalCase3InactiveEnd) {
  // [25, 35]: active at ts (dev1), inactive at te (gap 30-40).
  const IntervalChain chain = RelevantChain(table_, 1, 25.0, 35.0);
  ASSERT_EQ(chain.records.size(), 2u);
  EXPECT_TRUE(chain.active_at_start);
  EXPECT_FALSE(chain.active_at_end);
  const Region ur = model_->Interval(chain, 25.0, 35.0);
  EXPECT_TRUE(ur.Contains({10, 0}));  // dev1's disk
  EXPECT_TRUE(ur.Contains({14, 0}));  // 4m past dev1, within Ring_e (5)
  // Ring_e budget is Vmax*(35-30) = 5 from dev1's range (outer 6):
  // 17m from dev1 is in Θ(dev1, dev2) but unreachable by te.
  EXPECT_FALSE(ur.Contains({17, 0}));
}

TEST_F(UncertaintyFixture, IntervalNoPredecessorRing) {
  // Object 2's first record starts at 20; window [10, 25] precedes it.
  const IntervalChain chain = RelevantChain(table_, 2, 10.0, 25.0);
  ASSERT_EQ(chain.records.size(), 1u);
  EXPECT_FALSE(chain.active_at_start);
  EXPECT_TRUE(chain.active_at_end);
  const Region ur = model_->Interval(chain, 10.0, 25.0);
  EXPECT_TRUE(ur.Contains({10, 0}));  // the detection range itself
  // Before detection the object was within Ring(dev1, 10): 15,0 is 5m out.
  EXPECT_TRUE(ur.Contains({15, 0}));
  EXPECT_FALSE(ur.Contains({25, 0}));  // 15m out > outer radius 11
}

TEST_F(UncertaintyFixture, IntervalNoSuccessorRing) {
  // Object 2's last record ends at 30; window [25, 40] extends past it.
  const IntervalChain chain = RelevantChain(table_, 2, 25.0, 40.0);
  ASSERT_EQ(chain.records.size(), 1u);
  EXPECT_TRUE(chain.active_at_start);
  EXPECT_FALSE(chain.active_at_end);
  const Region ur = model_->Interval(chain, 25.0, 40.0);
  EXPECT_TRUE(ur.Contains({10, 0}));
  EXPECT_TRUE(ur.Contains({18, 0}));   // 8m out <= budget 10 (outer 11)
  EXPECT_FALSE(ur.Contains({22, 0}));  // 12m out
}

TEST_F(UncertaintyFixture, RelevantChainEmptyOutsideData) {
  EXPECT_TRUE(RelevantChain(table_, 1, 100.0, 200.0).records.empty());
  EXPECT_TRUE(RelevantChain(table_, 2, 0.0, 10.0).records.empty());
  EXPECT_TRUE(RelevantChain(table_, 99, 0.0, 10.0).records.empty());
}

TEST_F(UncertaintyFixture, RelevantChainSpanningGapOnly) {
  // Window strictly inside the 30-40 gap: chain is {rd_pre, rd_suc}.
  const IntervalChain chain = RelevantChain(table_, 1, 32.0, 38.0);
  ASSERT_EQ(chain.records.size(), 2u);
  EXPECT_EQ(table_.record(chain.records[0]).device_id, 1);
  EXPECT_EQ(table_.record(chain.records[1]).device_id, 2);
}

TEST_F(UncertaintyFixture, IntervalMbrsCoverRegion) {
  Rng rng(31);
  const struct {
    Timestamp ts, te;
  } windows[] = {{5, 25}, {12, 18}, {15, 45}, {5, 45}, {22, 28}, {32, 38}};
  for (const auto& w : windows) {
    const IntervalChain chain = RelevantChain(table_, 1, w.ts, w.te);
    ASSERT_FALSE(chain.records.empty());
    const Region ur = model_->Interval(chain, w.ts, w.te);
    Box mbr;
    std::vector<Box> sub;
    model_->IntervalMbrs(chain, w.ts, w.te, &mbr, &sub);
    EXPECT_FALSE(mbr.Empty());
    EXPECT_FALSE(sub.empty());
    // Overall MBR is the union of the sub-MBRs.
    Box rebuilt;
    for (const Box& b : sub) rebuilt.ExpandToInclude(b);
    EXPECT_EQ(mbr, rebuilt);
    // Every region point is inside the MBR and inside some sub-MBR.
    const Box domain = ur.Bounds();
    for (int i = 0; i < 400; ++i) {
      const Point p{rng.Uniform(domain.min_x - 1, domain.max_x + 1),
                    rng.Uniform(domain.min_y - 1, domain.max_y + 1)};
      if (!ur.Contains(p)) continue;
      EXPECT_TRUE(mbr.Contains(p));
      bool in_sub = false;
      for (const Box& b : sub) in_sub |= b.Contains(p);
      EXPECT_TRUE(in_sub) << "[" << w.ts << "," << w.te << "] point ("
                          << p.x << "," << p.y << ")";
    }
  }
}

TEST_F(UncertaintyFixture, SnapshotUrShrinksWithTime) {
  // Earlier in the gap, the pre-ring is tighter: UR(14) ⊆ ring(dev0)
  // smaller than UR(16)'s. Check via sampled area proxy.
  const Region early = model_->Snapshot(StateAt(1, 12.0), 12.0);
  const Region mid = model_->Snapshot(StateAt(1, 15.0), 15.0);
  Rng rng(77);
  int early_hits = 0;
  int mid_hits = 0;
  for (int i = 0; i < 20000; ++i) {
    const Point p{rng.Uniform(-12, 22), rng.Uniform(-12, 12)};
    early_hits += early.Contains(p) ? 1 : 0;
    mid_hits += mid.Contains(p) ? 1 : 0;
  }
  // At t=15 both budgets are 5 (max freedom); at t=12 budgets are 2 and 8.
  EXPECT_LT(early_hits, mid_hits);
}

TEST_F(UncertaintyFixture, ZeroBudgetPreRingYieldsDetectionDisk) {
  // Inactive state queried exactly at rd_pre.te: the pre-ring's travel
  // budget is 0, which used to degenerate to a zero-area annulus and erase
  // the whole UR. The object is provably still inside dev0's range at that
  // instant, so the UR must be (a subset of) the detection disk, not empty.
  SnapshotState state;
  state.object = 1;
  state.pre = 0;  // dev0 [0,10]
  state.suc = 1;  // dev1 [20,30]
  const Region ur = model_->Snapshot(state, 10.0);
  ASSERT_FALSE(ur.IsEmpty());
  EXPECT_TRUE(ur.Contains({0.0, 0.0}));
  EXPECT_TRUE(ur.Contains({0.9, 0.0}));
  EXPECT_FALSE(ur.Contains({1.5, 0.0}));  // outside dev0's range
  // The derivation-free MBR stays a superset of the region.
  const Box mbr = model_->SnapshotMbr(state, 10.0);
  EXPECT_FALSE(mbr.Empty());
  EXPECT_TRUE(mbr.Contains(ur.Bounds()));
}

TEST_F(UncertaintyFixture, ZeroBudgetSucRingYieldsDetectionDisk) {
  // Symmetric boundary: queried exactly at rd_suc.ts, the suc-ring's
  // budget is 0 and the object is already inside dev1's range.
  SnapshotState state;
  state.object = 1;
  state.pre = 0;  // dev0 [0,10]
  state.suc = 1;  // dev1 [20,30]
  const Region ur = model_->Snapshot(state, 20.0);
  ASSERT_FALSE(ur.IsEmpty());
  EXPECT_TRUE(ur.Contains({10.0, 0.0}));
  EXPECT_FALSE(ur.Contains({12.0, 0.0}));
}

TEST_F(UncertaintyFixture, ZeroBudgetActivePreRingKeepsHandoffLens) {
  // An active state at the same-instant handoff between two overlapping
  // ranges: budget 0 used to empty the intersection; the correct region is
  // covering range ∩ pre's detection disk (the overlap lens).
  Deployment close;
  close.AddDevice(Circle{{0, 0}, 1.0});
  close.AddDevice(Circle{{1.5, 0}, 1.0});
  close.BuildIndex();
  ObjectTrackingTable table;
  table.Append({1, 0, 0, 10});
  table.Append({1, 1, 10, 20});
  INDOORFLOW_CHECK(table.Finalize().ok());
  const UncertaintyModel model(table, close, 1.0);

  SnapshotState state;
  state.object = 1;
  state.pre = 0;
  state.covering = {1};
  const Region ur = model.Snapshot(state, 10.0);
  ASSERT_FALSE(ur.IsEmpty());
  EXPECT_TRUE(ur.Contains({0.75, 0.0}));   // in both disks
  EXPECT_FALSE(ur.Contains({-0.5, 0.0}));  // in dev0 only
  EXPECT_FALSE(ur.Contains({2.0, 0.0}));   // in dev1 only
  EXPECT_FALSE(model.SnapshotMbr(state, 10.0).Empty());
}

TEST_F(UncertaintyFixture, DegenerateIntervalDelegatesToSnapshot) {
  // [t, t] must produce exactly the snapshot region/MBR at t — the chain
  // classification (front.te <= ts, back.ts >= te) would otherwise tag a
  // boundary record as both predecessor and successor when ts == te.
  Rng rng(13);
  for (const Timestamp t : {5.0, 10.0, 15.0, 20.0, 25.0, 35.0, 45.0}) {
    const IntervalChain chain = RelevantChain(table_, 1, t, t);
    if (chain.records.empty()) continue;
    const Region interval = model_->Interval(chain, t, t);
    const Region snapshot =
        model_->Snapshot(ResolveSnapshotStateAt(table_, 1, t), t);
    EXPECT_EQ(interval.IsEmpty(), snapshot.IsEmpty()) << "t=" << t;
    for (int i = 0; i < 2000; ++i) {
      const Point p{rng.Uniform(-12, 32), rng.Uniform(-12, 12)};
      ASSERT_EQ(interval.Contains(p), snapshot.Contains(p))
          << "t=" << t << " p=(" << p.x << "," << p.y << ")";
    }
    Box mbr;
    std::vector<Box> sub_mbrs;
    model_->IntervalMbrs(chain, t, t, &mbr, &sub_mbrs);
    const Box snap_mbr =
        model_->SnapshotMbr(ResolveSnapshotStateAt(table_, 1, t), t);
    EXPECT_EQ(mbr.Empty(), snap_mbr.Empty()) << "t=" << t;
    if (!mbr.Empty()) {
      EXPECT_DOUBLE_EQ(mbr.min_x, snap_mbr.min_x) << "t=" << t;
      EXPECT_DOUBLE_EQ(mbr.max_x, snap_mbr.max_x) << "t=" << t;
      EXPECT_DOUBLE_EQ(mbr.min_y, snap_mbr.min_y) << "t=" << t;
      EXPECT_DOUBLE_EQ(mbr.max_y, snap_mbr.max_y) << "t=" << t;
    }
  }
}

}  // namespace
}  // namespace indoorflow
