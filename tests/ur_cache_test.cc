// Unit tests for the cross-query uncertainty-region cache
// (src/core/ur_cache.h): hit/miss semantics, key namespacing, LRU
// eviction under the byte budget, epoch-based invalidation, and counter
// accounting — plus UrCacheConcurrencyTest, which races lookups, inserts,
// and epoch bumps (and whole engine/monitor workloads sharing one cache)
// for the TSan CI job.

#include <cmath>
#include <numbers>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/streaming.h"
#include "src/core/ur_cache.h"

namespace indoorflow {
namespace {

// A polygon region with a controllable footprint: ApproxBytes grows
// linearly in the vertex count, which the byte-budget tests exploit.
Region PolygonRegion(int vertices, double radius = 5.0) {
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(vertices));
  for (int i = 0; i < vertices; ++i) {
    const double angle =
        2.0 * std::numbers::pi * i / static_cast<double>(vertices);
    points.push_back(
        Point{radius * std::cos(angle), radius * std::sin(angle)});
  }
  return Region::Make(Polygon(std::move(points)));
}

TEST(UrCacheTest, MissThenHitRoundTrips) {
  UrCacheConfig config;
  config.enabled = true;
  UrCache cache(config);

  Region out;
  EXPECT_FALSE(cache.Lookup(7, UrCache::Kind::kSnapshot, 10.0, 10.0, &out));

  const Region region = Region::Make(Circle{{3.0, 4.0}, 2.0});
  cache.Insert(7, UrCache::Kind::kSnapshot, 10.0, 10.0, region);
  ASSERT_TRUE(cache.Lookup(7, UrCache::Kind::kSnapshot, 10.0, 10.0, &out));
  // Regions share immutable nodes, so the copy describes the same set.
  EXPECT_TRUE(out.Contains({3.0, 4.0}));
  EXPECT_FALSE(out.Contains({3.0, 7.0}));
  EXPECT_EQ(out.ApproxBytes(), region.ApproxBytes());

  const UrCache::Counters counters = cache.TotalCounters();
  EXPECT_EQ(counters.hits, 1);
  EXPECT_EQ(counters.misses, 1);
  EXPECT_EQ(counters.inserts, 1);
  EXPECT_EQ(cache.EntryCount(), 1u);
}

TEST(UrCacheTest, KindsObjectsAndTimesAreSeparateNamespaces) {
  UrCacheConfig config;
  config.enabled = true;
  UrCache cache(config);
  const Region region = Region::Make(Circle{{0.0, 0.0}, 1.0});
  cache.Insert(1, UrCache::Kind::kSnapshot, 10.0, 10.0, region);

  Region out;
  // Same (object, t) under another kind, another object, another time, and
  // another te all miss: only the exact key hits.
  EXPECT_FALSE(cache.Lookup(1, UrCache::Kind::kLive, 10.0, 10.0, &out));
  EXPECT_FALSE(cache.Lookup(1, UrCache::Kind::kInterval, 10.0, 10.0, &out));
  EXPECT_FALSE(cache.Lookup(2, UrCache::Kind::kSnapshot, 10.0, 10.0, &out));
  EXPECT_FALSE(cache.Lookup(1, UrCache::Kind::kSnapshot, 10.5, 10.5, &out));
  EXPECT_FALSE(cache.Lookup(1, UrCache::Kind::kSnapshot, 10.0, 12.0, &out));
  EXPECT_TRUE(cache.Lookup(1, UrCache::Kind::kSnapshot, 10.0, 10.0, &out));
}

TEST(UrCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  UrCacheConfig config;
  config.enabled = true;
  config.shards = 1;  // single shard: deterministic LRU order
  const Region big = PolygonRegion(200);
  // Budget fits two entries but not three.
  config.max_bytes = 2 * (big.ApproxBytes() + 512);
  UrCache cache(config);
  ASSERT_EQ(cache.shard_count(), 1u);

  cache.Insert(1, UrCache::Kind::kSnapshot, 1.0, 1.0, PolygonRegion(200));
  cache.Insert(2, UrCache::Kind::kSnapshot, 1.0, 1.0, PolygonRegion(200));
  Region out;
  // Touch object 1 so object 2 becomes the LRU victim.
  ASSERT_TRUE(cache.Lookup(1, UrCache::Kind::kSnapshot, 1.0, 1.0, &out));
  cache.Insert(3, UrCache::Kind::kSnapshot, 1.0, 1.0, PolygonRegion(200));

  EXPECT_TRUE(cache.Lookup(1, UrCache::Kind::kSnapshot, 1.0, 1.0, &out));
  EXPECT_FALSE(cache.Lookup(2, UrCache::Kind::kSnapshot, 1.0, 1.0, &out));
  EXPECT_TRUE(cache.Lookup(3, UrCache::Kind::kSnapshot, 1.0, 1.0, &out));
  EXPECT_GE(cache.TotalCounters().evictions, 1);
  EXPECT_LE(cache.ApproxBytes(), cache.shard_budget_bytes());
}

TEST(UrCacheTest, OversizedRegionIsNotCached) {
  UrCacheConfig config;
  config.enabled = true;
  config.shards = 1;
  config.max_bytes = 256;  // smaller than the region below
  UrCache cache(config);

  cache.Insert(1, UrCache::Kind::kSnapshot, 1.0, 1.0, PolygonRegion(500));
  EXPECT_EQ(cache.EntryCount(), 0u);
  Region out;
  EXPECT_FALSE(cache.Lookup(1, UrCache::Kind::kSnapshot, 1.0, 1.0, &out));
}

TEST(UrCacheTest, BumpEpochInvalidatesAllEntriesOfTheObjectLazily) {
  UrCacheConfig config;
  config.enabled = true;
  UrCache cache(config);
  const Region region = Region::Make(Circle{{0.0, 0.0}, 1.0});
  cache.Insert(1, UrCache::Kind::kSnapshot, 1.0, 1.0, region);
  cache.Insert(1, UrCache::Kind::kInterval, 1.0, 5.0, region);
  cache.Insert(2, UrCache::Kind::kSnapshot, 1.0, 1.0, region);

  EXPECT_EQ(cache.EpochOf(1), 0u);
  cache.BumpEpoch(1);
  EXPECT_EQ(cache.EpochOf(1), 1u);

  Region out;
  // Object 1's entries are stale (dropped on lookup); object 2's survive.
  EXPECT_FALSE(cache.Lookup(1, UrCache::Kind::kSnapshot, 1.0, 1.0, &out));
  EXPECT_FALSE(cache.Lookup(1, UrCache::Kind::kInterval, 1.0, 5.0, &out));
  EXPECT_TRUE(cache.Lookup(2, UrCache::Kind::kSnapshot, 1.0, 1.0, &out));
  EXPECT_EQ(cache.TotalCounters().stale_drops, 2);
  EXPECT_EQ(cache.EntryCount(), 1u);

  // Re-inserting after the bump is stamped with the new epoch and hits.
  cache.Insert(1, UrCache::Kind::kSnapshot, 1.0, 1.0, region);
  EXPECT_TRUE(cache.Lookup(1, UrCache::Kind::kSnapshot, 1.0, 1.0, &out));
}

// Per-shard stats must sum to the whole-cache aggregates and expose skew
// (every entry for one key landing in one shard).
TEST(UrCacheTest, ShardStatsSumToAggregates) {
  UrCacheConfig config;
  config.enabled = true;
  config.shards = 4;
  UrCache cache(config);
  ASSERT_EQ(cache.shard_count(), 4u);
  const Region region = Region::Make(Circle{{0.0, 0.0}, 1.0});
  for (ObjectId o = 0; o < 16; ++o) {
    cache.Insert(o, UrCache::Kind::kSnapshot, 1.0, 1.0, region);
  }
  Region out;
  EXPECT_TRUE(cache.Lookup(3, UrCache::Kind::kSnapshot, 1.0, 1.0, &out));
  EXPECT_FALSE(cache.Lookup(99, UrCache::Kind::kSnapshot, 1.0, 1.0, &out));

  size_t bytes = 0;
  size_t entries = 0;
  UrCache::Counters counters;
  for (size_t s = 0; s < cache.shard_count(); ++s) {
    const UrCache::ShardStats stats = cache.ShardStatsAt(s);
    bytes += stats.bytes;
    entries += stats.entries;
    counters.hits += stats.counters.hits;
    counters.misses += stats.counters.misses;
    counters.inserts += stats.counters.inserts;
    counters.evictions += stats.counters.evictions;
    counters.stale_drops += stats.counters.stale_drops;
  }
  EXPECT_EQ(bytes, cache.ApproxBytes());
  EXPECT_EQ(entries, cache.EntryCount());
  const UrCache::Counters total = cache.TotalCounters();
  EXPECT_EQ(counters.hits, total.hits);
  EXPECT_EQ(counters.misses, total.misses);
  EXPECT_EQ(counters.inserts, total.inserts);
  EXPECT_EQ(counters.evictions, total.evictions);
  EXPECT_EQ(counters.stale_drops, total.stale_drops);
  EXPECT_EQ(counters.inserts, 16);
  EXPECT_EQ(counters.hits, 1);
  EXPECT_EQ(counters.misses, 1);
}

TEST(UrCacheTest, InsertReplacesExistingKey) {
  UrCacheConfig config;
  config.enabled = true;
  UrCache cache(config);
  cache.Insert(1, UrCache::Kind::kSnapshot, 1.0, 1.0,
               Region::Make(Circle{{0.0, 0.0}, 1.0}));
  cache.Insert(1, UrCache::Kind::kSnapshot, 1.0, 1.0,
               Region::Make(Circle{{10.0, 0.0}, 1.0}));
  EXPECT_EQ(cache.EntryCount(), 1u);
  Region out;
  ASSERT_TRUE(cache.Lookup(1, UrCache::Kind::kSnapshot, 1.0, 1.0, &out));
  EXPECT_TRUE(out.Contains({10.0, 0.0}));
  EXPECT_FALSE(out.Contains({0.0, 0.0}));
}

TEST(UrCacheTest, PresenceMemoSharesEntryLifetime) {
  UrCacheConfig config;
  config.enabled = true;
  UrCache cache(config);
  const Region region = PolygonRegion(8);

  UrCache::PresenceMemoPtr insert_memo;
  cache.Insert(1, UrCache::Kind::kSnapshot, 10.0, 10.0, region,
               &insert_memo);
  ASSERT_NE(insert_memo, nullptr);
  double value = 0.0;
  EXPECT_FALSE(insert_memo->TryGet(7, &value));
  insert_memo->Put(7, 0.25);

  // A hit hands back the same memo with the stored integral.
  Region out;
  UrCache::PresenceMemoPtr hit_memo;
  ASSERT_TRUE(cache.Lookup(1, UrCache::Kind::kSnapshot, 10.0, 10.0, &out,
                           &hit_memo));
  ASSERT_NE(hit_memo, nullptr);
  EXPECT_TRUE(hit_memo->TryGet(7, &value));
  EXPECT_EQ(value, 0.25);

  // Epoch invalidation covers the memo: the stale drop releases it, and a
  // re-insert starts a fresh, empty one.
  cache.BumpEpoch(1);
  EXPECT_FALSE(cache.Lookup(1, UrCache::Kind::kSnapshot, 10.0, 10.0, &out,
                            &hit_memo));
  EXPECT_EQ(hit_memo, nullptr);
  cache.Insert(1, UrCache::Kind::kSnapshot, 10.0, 10.0, region,
               &insert_memo);
  ASSERT_NE(insert_memo, nullptr);
  EXPECT_FALSE(insert_memo->TryGet(7, &value));

  // Replacement also resets the memo (the new derivation may carry a newer
  // epoch stamp).
  insert_memo->Put(7, 0.5);
  cache.Insert(1, UrCache::Kind::kSnapshot, 10.0, 10.0, region,
               &insert_memo);
  ASSERT_NE(insert_memo, nullptr);
  EXPECT_FALSE(insert_memo->TryGet(7, &value));

  // An uncacheable (oversized) region yields no memo.
  UrCacheConfig tiny;
  tiny.enabled = true;
  tiny.shards = 1;
  tiny.max_bytes = 256;
  UrCache small(tiny);
  UrCache::PresenceMemoPtr none;
  small.Insert(1, UrCache::Kind::kSnapshot, 1.0, 1.0, PolygonRegion(500),
               &none);
  EXPECT_EQ(none, nullptr);
}

TEST(UrCacheConcurrencyTest, RacingLookupsInsertsAndEpochBumps) {
  UrCacheConfig config;
  config.enabled = true;
  config.max_bytes = 64 << 10;  // small enough to force evictions
  config.shards = 4;
  UrCache cache(config);

  constexpr int kThreads = 4;
  constexpr int kOps = 400;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&cache, w] {
      for (int i = 0; i < kOps; ++i) {
        const ObjectId object = (w * kOps + i) % 17;
        const Timestamp t = static_cast<Timestamp>(i % 13);
        Region out;
        if (!cache.Lookup(object, UrCache::Kind::kSnapshot, t, t, &out)) {
          cache.Insert(object, UrCache::Kind::kSnapshot, t, t,
                       PolygonRegion(32 + i % 64));
        }
        if (i % 31 == 0) cache.BumpEpoch(object);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const UrCache::Counters counters = cache.TotalCounters();
  EXPECT_EQ(counters.hits + counters.misses,
            static_cast<int64_t>(kThreads) * kOps);
  EXPECT_LE(cache.ApproxBytes(),
            cache.shard_budget_bytes() * cache.shard_count());
}

TEST(UrCacheConcurrencyTest, BatchQueriesShareOneEngineCache) {
  OfficeDatasetConfig data_config;
  data_config.num_objects = 8;
  data_config.duration = 600.0;
  data_config.seed = 17;
  const Dataset dataset = GenerateOfficeDataset(data_config);

  EngineConfig config;
  config.topology = TopologyMode::kPartition;
  config.vmax = dataset.vmax;
  config.ur_cache.enabled = true;
  const QueryEngine engine(dataset, config);

  // Repeated timestamps across the batch: workers race hits and inserts on
  // the same keys. Results must match the serial reference exactly.
  std::vector<Timestamp> times;
  for (int i = 0; i < 24; ++i) {
    times.push_back(100.0 + 50.0 * (i % 4));
  }
  const auto batches =
      engine.SnapshotTopKBatch(times, 5, Algorithm::kJoin, nullptr, 4);
  ASSERT_EQ(batches.size(), times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    const auto reference =
        engine.SnapshotTopK(times[i], 5, Algorithm::kJoin);
    ASSERT_EQ(batches[i].size(), reference.size()) << "i=" << i;
    for (size_t j = 0; j < reference.size(); ++j) {
      EXPECT_EQ(batches[i][j].poi, reference[j].poi) << "i=" << i;
      EXPECT_EQ(batches[i][j].flow, reference[j].flow) << "i=" << i;
    }
  }
  ASSERT_NE(engine.ur_cache(), nullptr);
  EXPECT_GT(engine.ur_cache()->TotalCounters().hits, 0);
}

TEST(UrCacheConcurrencyTest, StreamingIngestRacesCachedQueries) {
  Deployment deployment;
  deployment.AddDevice(Circle{{0, 0}, 1.0});
  deployment.AddDevice(Circle{{10, 0}, 1.0});
  deployment.BuildIndex();
  PoiSet pois;
  pois.push_back(Poi{0, "a", Polygon::Rectangle(-2, -2, 2, 2)});
  pois.push_back(Poi{1, "b", Polygon::Rectangle(8, -2, 12, 2)});

  StreamingOptions options;
  options.merger.sampling_period = 1.0;
  options.ur_cache.enabled = true;
  StreamingMonitor monitor(deployment, pois, options);

  std::thread ingester([&monitor] {
    for (int i = 0; i < 300; ++i) {
      const RawReading reading{i % 5, i % 2,
                              static_cast<Timestamp>(i) / 3.0};
      ASSERT_TRUE(monitor.Ingest(reading).ok());
    }
  });
  std::thread poller([&monitor] {
    for (int i = 0; i < 200; ++i) {
      const Timestamp t = monitor.now();
      monitor.CurrentTopK(t, 2);
      monitor.LiveRegion(i % 5, t);
    }
  });
  ingester.join();
  poller.join();

  // Post-race sanity: a repeated query at a fixed time is hit-stable.
  const Timestamp t = monitor.now();
  const auto first = monitor.CurrentTopK(t, 2);
  const auto second = monitor.CurrentTopK(t, 2);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].poi, second[i].poi);
    EXPECT_EQ(first[i].flow, second[i].flow);
  }
}

}  // namespace
}  // namespace indoorflow
